//! Piecewise-polynomial representation of the mobile charge curve
//! `Q_S(V_SC)`.
//!
//! A [`PiecewiseCharge`] is `k` interior breakpoints and `k + 1` region
//! polynomials (ascending in `V_SC`). The first region extends to `−∞`
//! (the paper's linear region) and the last to `+∞` (the paper's zero
//! region). Evaluation is a breakpoint search plus one Horner pass —
//! no quadrature, no iteration.

use cntfet_numerics::polynomial::Polynomial;

/// A piecewise-polynomial charge approximation.
///
/// # Examples
///
/// ```
/// use cntfet_core::piecewise::PiecewiseCharge;
/// use cntfet_numerics::polynomial::Polynomial;
///
/// // Two regions split at 0: `1 − x` on the left, zero on the right.
/// let pw = PiecewiseCharge::new(
///     vec![0.0],
///     vec![Polynomial::new(vec![1.0, -1.0]), Polynomial::zero()],
/// )?;
/// assert_eq!(pw.eval(-1.0), 2.0);
/// assert_eq!(pw.eval(1.0), 0.0);
/// # Ok::<(), cntfet_core::CompactModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseCharge {
    breakpoints: Vec<f64>,
    polys: Vec<Polynomial>,
}

use crate::error::CompactModelError;

impl PiecewiseCharge {
    /// Creates a piecewise curve from interior breakpoints (ascending) and
    /// one polynomial per region (`breakpoints.len() + 1` regions).
    ///
    /// # Errors
    ///
    /// Returns [`CompactModelError::InvalidSpec`] when the region count
    /// does not match, the breakpoints are not strictly increasing, or any
    /// polynomial exceeds degree 3 (which would break the closed-form
    /// solver).
    pub fn new(breakpoints: Vec<f64>, polys: Vec<Polynomial>) -> Result<Self, CompactModelError> {
        if polys.len() != breakpoints.len() + 1 {
            return Err(CompactModelError::InvalidSpec(format!(
                "{} breakpoints require {} regions, got {}",
                breakpoints.len(),
                breakpoints.len() + 1,
                polys.len()
            )));
        }
        for w in breakpoints.windows(2) {
            // partial_cmp so NaN values are rejected, not let through.
            if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
                return Err(CompactModelError::InvalidSpec(format!(
                    "breakpoints must be strictly increasing ({} then {})",
                    w[0], w[1]
                )));
            }
        }
        for (i, p) in polys.iter().enumerate() {
            if p.degree().unwrap_or(0) > 3 {
                return Err(CompactModelError::InvalidSpec(format!(
                    "region {i} has degree {} (> 3)",
                    p.degree().unwrap_or(0)
                )));
            }
        }
        Ok(PiecewiseCharge { breakpoints, polys })
    }

    /// Interior breakpoints, ascending.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Region polynomials, one more than [`PiecewiseCharge::breakpoints`].
    pub fn polynomials(&self) -> &[Polynomial] {
        &self.polys
    }

    /// Index of the region containing `v` (right-closed regions:
    /// `v` exactly on a breakpoint belongs to the left region).
    pub fn region_index(&self, v: f64) -> usize {
        self.breakpoints.partition_point(|&b| b < v)
    }

    /// Evaluates the charge at `v` (V_SC in volts; result in C/m).
    pub fn eval(&self, v: f64) -> f64 {
        self.polys[self.region_index(v)].eval(v)
    }

    /// Evaluates the slope `dQ/dV` at `v` (F/m — the compact model's
    /// quantum capacitance, up to sign).
    pub fn eval_derivative(&self, v: f64) -> f64 {
        self.polys[self.region_index(v)].eval_with_derivative(v).1
    }

    /// Largest polynomial degree across regions.
    pub fn max_degree(&self) -> usize {
        self.polys
            .iter()
            .map(|p| p.degree().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    /// Value and slope mismatches at every breakpoint, as
    /// `(value_jump, slope_jump)` pairs. Both should be ≈ 0 for a fit
    /// honouring the paper's C¹-continuity requirement.
    pub fn continuity_jumps(&self) -> Vec<(f64, f64)> {
        self.breakpoints
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let (lv, ls) = self.polys[i].eval_with_derivative(b);
                let (rv, rs) = self.polys[i + 1].eval_with_derivative(b);
                (rv - lv, rs - ls)
            })
            .collect()
    }

    /// `true` when the curve is non-increasing on `[lo, hi]` sampled at
    /// `n` points — the physical sanity condition for a charge curve
    /// (charge falls as the band rises).
    pub fn is_non_increasing(&self, lo: f64, hi: f64, n: usize) -> bool {
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let v = lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64;
            let q = self.eval(v);
            if q > prev + 1e-18 {
                return false;
            }
            prev = q;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region() -> PiecewiseCharge {
        PiecewiseCharge::new(
            vec![0.0],
            vec![Polynomial::new(vec![1.0, -1.0]), Polynomial::zero()],
        )
        .unwrap()
    }

    #[test]
    fn region_lookup_is_right_closed() {
        let pw = two_region();
        assert_eq!(pw.region_index(-0.5), 0);
        assert_eq!(pw.region_index(0.0), 0);
        assert_eq!(pw.region_index(1e-12), 1);
    }

    #[test]
    fn eval_switches_polynomials() {
        let pw = two_region();
        assert_eq!(pw.eval(-2.0), 3.0);
        assert_eq!(pw.eval(0.0), 1.0);
        assert_eq!(pw.eval(5.0), 0.0);
    }

    #[test]
    fn derivative_tracks_regions() {
        let pw = two_region();
        assert_eq!(pw.eval_derivative(-1.0), -1.0);
        assert_eq!(pw.eval_derivative(1.0), 0.0);
    }

    #[test]
    fn continuity_jumps_report_discontinuity() {
        let pw = two_region();
        let jumps = pw.continuity_jumps();
        assert_eq!(jumps.len(), 1);
        // Value jumps from 1 to 0, slope from −1 to 0.
        assert!((jumps[0].0 + 1.0).abs() < 1e-14);
        assert!((jumps[0].1 - 1.0).abs() < 1e-14);
    }

    #[test]
    fn c1_curve_has_no_jumps() {
        // (x−1)² on the left of 1, zero on the right: C¹ at the joint.
        let pw = PiecewiseCharge::new(
            vec![1.0],
            vec![Polynomial::new(vec![1.0, -2.0, 1.0]), Polynomial::zero()],
        )
        .unwrap();
        let jumps = pw.continuity_jumps();
        assert!(jumps[0].0.abs() < 1e-14);
        assert!(jumps[0].1.abs() < 1e-14);
    }

    #[test]
    fn wrong_region_count_is_rejected() {
        let r = PiecewiseCharge::new(vec![0.0], vec![Polynomial::zero()]);
        assert!(matches!(r, Err(CompactModelError::InvalidSpec(_))));
    }

    #[test]
    fn unsorted_breakpoints_are_rejected() {
        let r = PiecewiseCharge::new(
            vec![1.0, 0.0],
            vec![Polynomial::zero(), Polynomial::zero(), Polynomial::zero()],
        );
        assert!(matches!(r, Err(CompactModelError::InvalidSpec(_))));
    }

    #[test]
    fn degree_four_is_rejected() {
        let quartic = Polynomial::new(vec![0.0, 0.0, 0.0, 0.0, 1.0]);
        let r = PiecewiseCharge::new(vec![], vec![quartic]);
        assert!(matches!(r, Err(CompactModelError::InvalidSpec(_))));
    }

    #[test]
    fn monotonicity_check() {
        let decreasing = PiecewiseCharge::new(
            vec![1.0],
            vec![Polynomial::new(vec![1.0, -1.0]), Polynomial::zero()],
        )
        .unwrap();
        assert!(decreasing.is_non_increasing(-2.0, 2.0, 50));
        let increasing =
            PiecewiseCharge::new(vec![], vec![Polynomial::new(vec![0.0, 1.0])]).unwrap();
        assert!(!increasing.is_non_increasing(-1.0, 1.0, 10));
    }

    #[test]
    fn single_region_curve_works() {
        let pw = PiecewiseCharge::new(vec![], vec![Polynomial::constant(2.0)]).unwrap();
        assert_eq!(pw.eval(100.0), 2.0);
        assert!(pw.continuity_jumps().is_empty());
        assert_eq!(pw.max_degree(), 0);
    }
}
