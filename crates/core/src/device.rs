//! The compact CNFET device: fitted piecewise charge + closed-form solver
//! + closed-form current — the complete fast model of the paper.

use crate::error::CompactModelError;
use crate::fit::{fit_piecewise, fit_with_optimized_breakpoints, FitOptions};
use crate::piecewise::PiecewiseCharge;
use crate::solver::ClosedFormScf;
use crate::spec::PiecewiseSpec;
use cntfet_physics::constants::ELEMENTARY_CHARGE;
use cntfet_reference::current::drain_current;
use cntfet_reference::{ChargeModel, DeviceParams, IvCurve, IvPoint};

/// Fast compact CNFET model (the paper's contribution).
///
/// Construction performs the one-off fitting step (sampling the
/// theoretical charge curve and solving small constrained least-squares
/// problems); every subsequent bias-point evaluation is closed-form —
/// polynomial roots and two logarithms.
///
/// # Examples
///
/// ```
/// use cntfet_core::CompactCntFet;
/// use cntfet_reference::DeviceParams;
///
/// let fast = CompactCntFet::model2(DeviceParams::paper_default())?;
/// let point = fast.solve_point(0.6, 0.6)?;
/// assert!(point.ids > 1e-6); // µA scale, like the reference
/// # Ok::<(), cntfet_core::CompactModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompactCntFet {
    params: DeviceParams,
    spec: PiecewiseSpec,
    scf: ClosedFormScf,
    /// Equilibrium mobile charge `q·N₀` (C/m), folded into the terminal
    /// charge of the self-consistent equation; see [`CompactCntFet::vsc`].
    qn0: f64,
    ef: f64,
    kt: f64,
    temperature: f64,
}

impl CompactCntFet {
    /// Builds the paper's three-piece **Model 1** for `params`.
    ///
    /// Model 1's single-degree-of-freedom quadratic cannot satisfy a C¹
    /// zero anchor *and* track the exponential charge tail, so — matching
    /// the error pattern of the paper's Table II — it is fitted with
    /// absolute least squares and a value-only joint at the zero region.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn model1(params: DeviceParams) -> Result<Self, CompactModelError> {
        let opts = FitOptions {
            relative_weight_floor: 1e12, // plain absolute least squares
            c1_zero_anchor: false,
            ..FitOptions::default()
        };
        Self::with_fit_options(params, PiecewiseSpec::model1(), opts)
    }

    /// Builds the paper's four-piece **Model 2** for `params`.
    ///
    /// Model 2 has enough degrees of freedom for the fully C¹ fit with
    /// mild relative weighting (the [`FitOptions::default`] settings),
    /// which lands its accuracy in the paper's sub-2 % band.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn model2(params: DeviceParams) -> Result<Self, CompactModelError> {
        Self::from_spec(params, PiecewiseSpec::model2())
    }

    /// Builds a compact model with a custom region specification, fitted
    /// against the reference theoretical charge curve with default fit
    /// options.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn from_spec(params: DeviceParams, spec: PiecewiseSpec) -> Result<Self, CompactModelError> {
        Self::with_fit_options(params, spec, FitOptions::default())
    }

    /// Builds with explicit fitting options.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn with_fit_options(
        params: DeviceParams,
        spec: PiecewiseSpec,
        opts: FitOptions,
    ) -> Result<Self, CompactModelError> {
        let charge_model = ChargeModel::new(&params, 1e-9);
        let ef = params.fermi_level.value();
        // Fit q·N_S rather than Q_S = q(N_S − N₀/2): the former decays to
        // *exactly* zero above E_F, so the paper's zero region is exact,
        // while the constant q·N₀ moves into the terminal charge (the two
        // formulations are algebraically identical in eq. 7). For E_F
        // deep in the gap they coincide; for E_F at the band edge the
        // Q_S form would miss the −qN₀/2 asymptote entirely.
        let curve = |v: f64| ELEMENTARY_CHARGE * charge_model.n_s(v);
        let pw = fit_piecewise(&curve, ef, &spec, opts)?;
        let qn0 = ELEMENTARY_CHARGE * charge_model.n_0();
        Ok(Self::assemble(params, spec, pw, qn0))
    }

    /// Builds with numerically optimised breakpoints (the paper's
    /// RMS-minimising boundary placement) starting from `initial`.
    ///
    /// # Errors
    ///
    /// Propagates fitting failures.
    pub fn with_optimized_breakpoints(
        params: DeviceParams,
        initial: PiecewiseSpec,
    ) -> Result<Self, CompactModelError> {
        let charge_model = ChargeModel::new(&params, 1e-9);
        let ef = params.fermi_level.value();
        let curve = |v: f64| ELEMENTARY_CHARGE * charge_model.n_s(v);
        let (pw, spec) =
            fit_with_optimized_breakpoints(&curve, ef, &initial, FitOptions::default())?;
        let qn0 = ELEMENTARY_CHARGE * charge_model.n_0();
        Ok(Self::assemble(params, spec, pw, qn0))
    }

    /// Builds directly from an already-fitted `q·N_S` curve (used by
    /// tests, ablations and serialisation layers above this crate).
    ///
    /// `qn0` is the equilibrium mobile charge `q·N₀` in C/m; pass 0 when
    /// the Fermi level is deep in the gap.
    pub fn from_fitted(
        params: DeviceParams,
        spec: PiecewiseSpec,
        charge: PiecewiseCharge,
        qn0: f64,
    ) -> Self {
        Self::assemble(params, spec, charge, qn0)
    }

    fn assemble(
        params: DeviceParams,
        spec: PiecewiseSpec,
        charge: PiecewiseCharge,
        qn0: f64,
    ) -> Self {
        let c_total = params.capacitances.total();
        let ef = params.fermi_level.value();
        let kt = params.thermal_energy_ev();
        let temperature = params.temperature.value();
        CompactCntFet {
            scf: ClosedFormScf::new(charge, c_total),
            params,
            spec,
            qn0,
            ef,
            kt,
            temperature,
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The region specification in effect.
    pub fn spec(&self) -> &PiecewiseSpec {
        &self.spec
    }

    /// The fitted piecewise charge curve (`q·N_S` as a function of
    /// `V_SC`, C/m).
    pub fn charge(&self) -> &PiecewiseCharge {
        self.scf.charge()
    }

    /// Equilibrium mobile charge `q·N₀` in C/m — the constant folded into
    /// the terminal charge of the self-consistent equation (see
    /// [`CompactCntFet::vsc`]). Circuit elements embedding the model need
    /// it to reconstruct the charge-balance residual.
    pub fn equilibrium_charge(&self) -> f64 {
        self.qn0
    }

    /// Self-consistent voltage at a common-source bias point, in volts.
    ///
    /// Solves `C_Σ V + (Q_t + qN₀) − q̂N_S(V) − q̂N_S(V + V_DS) = 0` in
    /// closed form, which is eq. (7) rewritten with the fitted `q·N_S`
    /// curve (the `−qN₀` of `ΔQ` moves to the constant side).
    ///
    /// # Errors
    ///
    /// Returns [`CompactModelError::NoRoot`] only for a malformed fit.
    pub fn vsc(&self, vg: f64, vds: f64) -> Result<f64, CompactModelError> {
        let q_t = self.params.capacitances.terminal_charge(vg, vds, 0.0);
        self.scf.solve(q_t + self.qn0, vds)
    }

    /// Drain current at a common-source bias point, in amperes
    /// (paper eq. 14).
    ///
    /// # Errors
    ///
    /// Propagates [`CompactModelError::NoRoot`].
    pub fn ids(&self, vg: f64, vds: f64) -> Result<f64, CompactModelError> {
        let vsc = self.vsc(vg, vds)?;
        Ok(drain_current(self.ef, vsc, vds, self.temperature, self.kt))
    }

    /// Solves one bias point, returning the same [`IvPoint`] record the
    /// reference model produces so comparisons are structural.
    ///
    /// # Errors
    ///
    /// Propagates [`CompactModelError::NoRoot`].
    pub fn solve_point(&self, vg: f64, vds: f64) -> Result<IvPoint, CompactModelError> {
        let vsc = self.vsc(vg, vds)?;
        let ids = drain_current(self.ef, vsc, vds, self.temperature, self.kt);
        Ok(IvPoint { vg, vds, vsc, ids })
    }

    /// Output characteristic at fixed `vg` over `vds_grid`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn output_characteristic(
        &self,
        vg: f64,
        vds_grid: &[f64],
    ) -> Result<IvCurve, CompactModelError> {
        let points = vds_grid
            .iter()
            .map(|&vds| self.solve_point(vg, vds))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IvCurve { points })
    }

    /// Transfer characteristic at fixed `vds` over `vg_grid`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn transfer_characteristic(
        &self,
        vds: f64,
        vg_grid: &[f64],
    ) -> Result<IvCurve, CompactModelError> {
        let points = vg_grid
            .iter()
            .map(|&vg| self.solve_point(vg, vds))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IvCurve { points })
    }

    /// Family of output characteristics, one per gate voltage.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn output_family(
        &self,
        vg_values: &[f64],
        vds_grid: &[f64],
    ) -> Result<Vec<IvCurve>, CompactModelError> {
        vg_values
            .iter()
            .map(|&vg| self.output_characteristic(vg, vds_grid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_numerics::interp::linspace;

    fn model2() -> CompactCntFet {
        CompactCntFet::model2(DeviceParams::paper_default()).unwrap()
    }

    #[test]
    fn fitted_charge_is_c1_and_monotone() {
        let m = model2();
        for (dv, ds) in m.charge().continuity_jumps() {
            assert!(dv.abs() < 1e-20, "value jump {dv}");
            assert!(ds.abs() < 1e-18, "slope jump {ds}");
        }
        assert!(m.charge().is_non_increasing(-0.9, 0.2, 300));
    }

    #[test]
    fn vsc_matches_reference_closely() {
        use cntfet_reference::BallisticModel;
        let m = model2();
        let r = BallisticModel::new(DeviceParams::paper_default());
        for &(vg, vds) in &[(0.3, 0.1), (0.45, 0.3), (0.6, 0.6)] {
            let fast = m.vsc(vg, vds).unwrap();
            let slow = r.solve_point(vg, vds, 0.0).unwrap().vsc;
            assert!(
                (fast - slow).abs() < 0.01,
                "vg {vg} vds {vds}: compact {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn ids_tracks_reference_within_paper_accuracy() {
        use cntfet_numerics::stats::relative_rms_percent;
        use cntfet_reference::BallisticModel;
        let m = model2();
        let r = BallisticModel::new(DeviceParams::paper_default());
        let grid = linspace(0.0, 0.6, 25);
        for &vg in &[0.3, 0.5, 0.6] {
            let fast = m.output_characteristic(vg, &grid).unwrap().currents();
            let slow = r.output_characteristic(vg, &grid).unwrap().currents();
            let err = relative_rms_percent(&fast, &slow);
            assert!(err < 5.0, "vg {vg}: RMS error {err}%");
        }
    }

    #[test]
    fn model1_is_faster_shape_but_less_accurate_than_model2() {
        use cntfet_numerics::stats::relative_rms_percent;
        use cntfet_reference::BallisticModel;
        let p = DeviceParams::paper_default();
        let m1 = CompactCntFet::model1(p.clone()).unwrap();
        let m2 = CompactCntFet::model2(p.clone()).unwrap();
        let r = BallisticModel::new(p);
        let grid = linspace(0.0, 0.6, 25);
        let mut e1_total = 0.0;
        let mut e2_total = 0.0;
        for &vg in &[0.2, 0.35, 0.5] {
            let slow = r.output_characteristic(vg, &grid).unwrap().currents();
            let f1 = m1.output_characteristic(vg, &grid).unwrap().currents();
            let f2 = m2.output_characteristic(vg, &grid).unwrap().currents();
            e1_total += relative_rms_percent(&f1, &slow);
            e2_total += relative_rms_percent(&f2, &slow);
        }
        assert!(
            e2_total < e1_total,
            "model2 ({e2_total}) should beat model1 ({e1_total})"
        );
    }

    #[test]
    fn output_curve_is_monotone_and_saturating() {
        let m = model2();
        let grid = linspace(0.0, 0.6, 31);
        let c = m.output_characteristic(0.5, &grid).unwrap();
        assert!(c.points[0].ids.abs() < 1e-12);
        for w in c.points.windows(2) {
            assert!(w[1].ids >= w[0].ids - 1e-12);
        }
        let n = c.points.len();
        let early = c.points[1].ids - c.points[0].ids;
        let late = c.points[n - 1].ids - c.points[n - 2].ids;
        assert!(late < 0.2 * early);
    }

    #[test]
    fn zero_bias_is_zero_current() {
        let m = model2();
        assert!(m.ids(0.0, 0.0).unwrap().abs() < 1e-15);
        assert!(m.ids(0.6, 0.0).unwrap().abs() < 1e-15);
    }

    #[test]
    fn family_ordering_follows_gate_voltage() {
        let m = model2();
        let fam = m.output_family(&[0.3, 0.45, 0.6], &[0.6]).unwrap();
        assert!(fam[0].points[0].ids < fam[1].points[0].ids);
        assert!(fam[1].points[0].ids < fam[2].points[0].ids);
    }

    #[test]
    fn transfer_curve_is_monotone() {
        let m = model2();
        let grid = linspace(0.1, 0.6, 11);
        let c = m.transfer_characteristic(0.4, &grid).unwrap();
        for w in c.points.windows(2) {
            assert!(w[1].ids > w[0].ids);
        }
    }

    #[test]
    fn optimized_breakpoints_construct_successfully() {
        let m = CompactCntFet::with_optimized_breakpoints(
            DeviceParams::paper_default(),
            PiecewiseSpec::model1(),
        )
        .unwrap();
        // Still three regions, still C¹.
        assert_eq!(m.spec().region_count(), 3);
        for (dv, ds) in m.charge().continuity_jumps() {
            assert!(dv.abs() < 1e-20 && ds.abs() < 1e-18);
        }
    }

    #[test]
    fn accessors_expose_configuration() {
        let m = model2();
        assert_eq!(m.spec().region_count(), 4);
        assert_eq!(m.params().fermi_level.value(), -0.32);
        assert_eq!(m.charge().breakpoints().len(), 3);
    }
}
