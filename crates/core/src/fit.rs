//! Numerical fitting of the piecewise charge approximation (paper §IV).
//!
//! The paper's procedure, reproduced here:
//!
//! 1. sample the theoretical `Q_S(V_SC)` curve (from the reference model's
//!    quadrature) on a dense grid;
//! 2. anchor the final region at zero;
//! 3. fit each remaining region **right-to-left** by least squares subject
//!    to value *and* slope continuity with the region already fitted on
//!    its right — "assuring the continuity of the first derivative";
//! 4. optionally move the breakpoints themselves to minimise the RMS
//!    deviation ("boundaries … calculated to minimise the RMS deviation
//!    from the theoretical curves" — the purely numerical approach that
//!    distinguishes this paper from the symbolic one it improves on).

use crate::error::CompactModelError;
use crate::piecewise::PiecewiseCharge;
use crate::spec::PiecewiseSpec;
use cntfet_numerics::fit::LinearConstraint;
use cntfet_numerics::interp::linspace;
use cntfet_numerics::linalg::Matrix;
use cntfet_numerics::optimize::{nelder_mead, NelderMeadOptions};
use cntfet_numerics::polynomial::Polynomial;
use cntfet_numerics::stats::relative_rms_percent;

/// Controls for the fitting pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitOptions {
    /// Lower edge of the fitting window measured from `E_F/q`, volts
    /// (negative; the window upper edge is the last breakpoint).
    pub domain_below_ef: f64,
    /// Sample count per region.
    pub samples_per_region: usize,
    /// Relative-weighting floor as a fraction of the curve's peak value.
    ///
    /// Samples are weighted `1/(|Q| + floor·Q_peak)²`, approximating a
    /// relative-error objective. The device spends its low-gate-bias life
    /// in the charge curve's small-value transition region, so pure
    /// absolute least squares (floor → ∞) sacrifices exactly the biases
    /// the paper's tables start at (`V_G = 0.1 V`).
    pub relative_weight_floor: f64,
    /// Whether the joint with the zero region constrains the slope as
    /// well as the value.
    ///
    /// `true` gives a fully C¹ curve. `false` keeps C¹ at all *interior*
    /// joints but lets the last fitted region reach zero with a free
    /// (negative) slope, which tracks the exponential tail of the true
    /// charge much better at the cost of a slope kink where the charge
    /// vanishes.
    pub c1_zero_anchor: bool,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            domain_below_ef: -0.7,
            samples_per_region: 160,
            relative_weight_floor: 0.1,
            c1_zero_anchor: true,
        }
    }
}

/// Fits a piecewise charge curve to `curve` (the theoretical `Q_S` as a
/// function of `V_SC`) for a device with Fermi level `ef` (eV).
///
/// # Errors
///
/// Propagates least-squares failures and spec validation errors.
///
/// # Examples
///
/// ```
/// use cntfet_core::fit::{fit_piecewise, FitOptions};
/// use cntfet_core::spec::PiecewiseSpec;
///
/// // A synthetic saturating curve standing in for Q_S.
/// let ef = -0.32;
/// let curve = |v: f64| if v < ef { ef - v } else { 0.0f64.max(0.0) };
/// let pw = fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), FitOptions::default())?;
/// assert_eq!(pw.breakpoints().len(), 2);
/// # Ok::<(), cntfet_core::CompactModelError>(())
/// ```
pub fn fit_piecewise<F: Fn(f64) -> f64>(
    curve: &F,
    ef: f64,
    spec: &PiecewiseSpec,
    opts: FitOptions,
) -> Result<PiecewiseCharge, CompactModelError> {
    validate_window(spec, opts)?;
    let bps = spec.absolute_breakpoints(ef);
    let n_regions = spec.region_count();
    let mut polys = vec![Polynomial::zero(); n_regions];

    // The paper's procedure: fit region by region from the zero anchor
    // leftwards, each region constrained to join its right neighbour with
    // matching value and slope. The least-squares weight inside each
    // region is uniform (absolute error), which — like the paper —
    // prioritises the large-charge part of the curve and accepts larger
    // *relative* error in the small-charge tail (visible as the higher
    // low-V_G errors in Tables II–IV).
    let mut join_value = 0.0;
    let mut join_slope = 0.0;
    let last = spec.degrees.len() - 1;
    for i in (0..spec.degrees.len()).rev() {
        // Region i lies between bps[i−1] (or the window edge) and bps[i].
        let right_bound = bps[i];
        let left_bound = if i == 0 {
            ef + opts.domain_below_ef
        } else {
            bps[i - 1]
        };
        let degree = spec.degrees[i];
        let xs = linspace(left_bound, right_bound, opts.samples_per_region);
        // Clamp at zero: the model's final region *is* zero, and for
        // E_F near the band edge the true Q_S dips negative above E_F
        // (the −qN₀/2 asymptote of eq. 10). Fitting those negative
        // samples would drag the constrained chain into non-monotone
        // territory; the paper's zero region discards them by design.
        let ys: Vec<f64> = xs.iter().map(|&x| curve(x).max(0.0)).collect();
        let poly = if degree == 1 {
            // Linear region: fully determined by the C¹ joint — the
            // tangent extension of its right neighbour.
            Polynomial::new(vec![join_value - join_slope * right_bound, join_slope])
        } else {
            let mut constraints = vec![LinearConstraint::value_at(right_bound, join_value, degree)];
            if i != last || opts.c1_zero_anchor {
                constraints.push(LinearConstraint::derivative_at(
                    right_bound,
                    join_slope,
                    degree,
                ));
            }
            let peak = ys.iter().fold(0.0f64, |m, y| m.max(y.abs()));
            let floor = opts.relative_weight_floor * peak.max(1e-300);
            let ws: Vec<f64> = ys
                .iter()
                .map(|y| {
                    let d = y.abs() + floor;
                    1.0 / (d * d)
                })
                .collect();
            weighted_constrained_polyfit(&xs, &ys, &ws, degree, &constraints)?
        };
        let (v, s) = poly.eval_with_derivative(left_bound);
        join_value = v;
        join_slope = s;
        polys[i] = poly;
    }
    PiecewiseCharge::new(bps, polys)
}

/// Weighted equality-constrained polynomial least squares via the KKT
/// system (the single-region analogue of the global fitter).
fn weighted_constrained_polyfit(
    xs: &[f64],
    ys: &[f64],
    ws: &[f64],
    degree: usize,
    constraints: &[LinearConstraint],
) -> Result<Polynomial, CompactModelError> {
    let n = degree + 1;
    let m = constraints.len();
    let mut ata = Matrix::zeros(n, n);
    let mut aty = vec![0.0; n];
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(ws) {
        for i in 0..n {
            let bi = x.powi(i as i32);
            aty[i] += w * bi * y;
            for j in 0..n {
                ata[(i, j)] += w * bi * x.powi(j as i32);
            }
        }
    }
    let dim = n + m;
    let mut kkt = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    for i in 0..n {
        rhs[i] = 2.0 * aty[i];
        for j in 0..n {
            kkt[(i, j)] = 2.0 * ata[(i, j)];
        }
    }
    for (ci, c) in constraints.iter().enumerate() {
        rhs[n + ci] = c.rhs;
        for (k, &w) in c.coeffs.iter().enumerate() {
            kkt[(k, n + ci)] = w;
            kkt[(n + ci, k)] = w;
        }
    }
    let sol = kkt.solve(&rhs)?;
    Ok(Polynomial::new(sol[..n].to_vec()))
}

fn validate_window(spec: &PiecewiseSpec, opts: FitOptions) -> Result<(), CompactModelError> {
    if opts.domain_below_ef >= spec.offsets[0] {
        return Err(CompactModelError::InvalidSpec(format!(
            "fit domain edge {} must lie below the first breakpoint offset {}",
            opts.domain_below_ef, spec.offsets[0]
        )));
    }
    Ok(())
}

/// Variant of [`fit_piecewise`] that fits **all regions simultaneously**
/// by equality-constrained weighted least squares: C¹ coupling at every
/// joint, zero anchor at the last breakpoint, and per-sample weights
/// `1/(|Q| + floor·Q_peak)²` approximating a relative-error objective.
///
/// This is *not* the paper's procedure — it is the ablation arm of the
/// accuracy/speed study (see `DESIGN.md`): joint values become free
/// optimisation parameters instead of being inherited from the right
/// neighbour, and weighting emphasises the subthreshold tail. It improves
/// the charge-curve RMS but can trade away large-charge accuracy, which
/// is what the paper's tables actually reward.
///
/// # Errors
///
/// Propagates spec validation and linear-algebra failures.
pub fn fit_piecewise_global<F: Fn(f64) -> f64>(
    curve: &F,
    ef: f64,
    spec: &PiecewiseSpec,
    opts: FitOptions,
) -> Result<PiecewiseCharge, CompactModelError> {
    validate_window(spec, opts)?;
    let bps = spec.absolute_breakpoints(ef);
    let degrees = &spec.degrees;
    let r_count = degrees.len();
    let sizes: Vec<usize> = degrees.iter().map(|d| d + 1).collect();
    let block_start: Vec<usize> = sizes
        .iter()
        .scan(0usize, |acc, &s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();
    let n: usize = sizes.iter().sum();

    // Pre-sample every region to establish the peak for relative
    // weighting.
    let mut region_samples: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(r_count);
    let mut peak = 0.0f64;
    for r in 0..r_count {
        let left = if r == 0 {
            ef + opts.domain_below_ef
        } else {
            bps[r - 1]
        };
        let right = bps[r];
        let xs = linspace(left, right, opts.samples_per_region);
        // Clamp at zero: the model's final region *is* zero, and for
        // E_F near the band edge the true Q_S dips negative above E_F
        // (the −qN₀/2 asymptote of eq. 10). Fitting those negative
        // samples would drag the constrained chain into non-monotone
        // territory; the paper's zero region discards them by design.
        let ys: Vec<f64> = xs.iter().map(|&x| curve(x).max(0.0)).collect();
        for &y in &ys {
            peak = peak.max(y.abs());
        }
        region_samples.push((xs, ys));
    }
    let floor = opts.relative_weight_floor.max(1e-6) * peak.max(1e-300);

    // Weighted normal-equation accumulation, block by block (the design
    // matrix is block diagonal since each sample touches one region).
    let mut ata = Matrix::zeros(n, n);
    let mut aty = vec![0.0; n];
    for (r, (xs, ys)) in region_samples.iter().enumerate() {
        let s0 = block_start[r];
        for (&x, &y) in xs.iter().zip(ys) {
            let denom = y.abs() + floor;
            let w = 1.0 / (denom * denom);
            for i in 0..sizes[r] {
                let bi = x.powi(i as i32);
                aty[s0 + i] += w * bi * y;
                for j in 0..sizes[r] {
                    ata[(s0 + i, s0 + j)] += w * bi * x.powi(j as i32);
                }
            }
        }
    }

    // Constraints: value+slope continuity at interior joints, value+slope
    // zero at the final breakpoint.
    let mut constraints: Vec<(Vec<f64>, f64)> = Vec::new();
    let basis_row = |x: f64, r: usize, derivative: bool| -> Vec<f64> {
        let mut row = vec![0.0; n];
        for i in 0..sizes[r] {
            row[block_start[r] + i] = if derivative {
                if i == 0 {
                    0.0
                } else {
                    i as f64 * x.powi(i as i32 - 1)
                }
            } else {
                x.powi(i as i32)
            };
        }
        row
    };
    for (r, &x) in bps.iter().enumerate().take(r_count - 1) {
        for derivative in [false, true] {
            let mut row = basis_row(x, r, derivative);
            let rhs_row = basis_row(x, r + 1, derivative);
            for (a, b) in row.iter_mut().zip(&rhs_row) {
                *a -= b;
            }
            constraints.push((row, 0.0));
        }
    }
    let anchor = bps[r_count - 1];
    constraints.push((basis_row(anchor, r_count - 1, false), 0.0));
    if opts.c1_zero_anchor {
        constraints.push((basis_row(anchor, r_count - 1, true), 0.0));
    }

    let m = constraints.len();
    if m > n {
        return Err(CompactModelError::InvalidSpec(format!(
            "{m} continuity constraints exceed {n} coefficients; increase region degrees"
        )));
    }
    let dim = n + m;
    let mut kkt = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    for i in 0..n {
        rhs[i] = 2.0 * aty[i];
        for j in 0..n {
            kkt[(i, j)] = 2.0 * ata[(i, j)];
        }
    }
    for (ci, (row, b)) in constraints.iter().enumerate() {
        rhs[n + ci] = *b;
        for (k, &w) in row.iter().enumerate() {
            kkt[(k, n + ci)] = w;
            kkt[(n + ci, k)] = w;
        }
    }
    let sol = kkt.solve(&rhs)?;

    let mut polys: Vec<Polynomial> = (0..r_count)
        .map(|r| Polynomial::new(sol[block_start[r]..block_start[r] + sizes[r]].to_vec()))
        .collect();
    polys.push(Polynomial::zero());
    PiecewiseCharge::new(bps, polys)
}

/// RMS-percent deviation of a fitted piecewise curve from the theoretical
/// curve over the fitting window, normalised by the curve's peak value
/// (the metric plotted against in the paper's Figs. 4–5).
pub fn fit_error_percent<F: Fn(f64) -> f64>(
    curve: &F,
    pw: &PiecewiseCharge,
    ef: f64,
    opts: FitOptions,
    eval_points: usize,
) -> f64 {
    let top = pw.breakpoints().last().copied().unwrap_or(ef);
    let xs = linspace(ef + opts.domain_below_ef, top, eval_points.max(2));
    let reference: Vec<f64> = xs.iter().map(|&x| curve(x)).collect();
    let model: Vec<f64> = xs.iter().map(|&x| pw.eval(x)).collect();
    relative_rms_percent(&model, &reference)
}

/// Relative (per-point) RMS error of a fit in percent, with a floor to
/// keep the near-zero tail finite: the breakpoint optimiser's objective.
///
/// Unlike [`fit_error_percent`], which normalises by the curve peak and
/// therefore ignores the small-charge tail, this metric penalises
/// *relative* deviation everywhere — which is what the self-consistent
/// solve actually feels, since the device operates in the tail at low
/// gate bias. The evaluation window extends `tail_beyond` volts past the
/// last breakpoint so a candidate cannot hide error by shrinking its
/// domain.
pub fn fit_error_relative_percent<F: Fn(f64) -> f64>(
    curve: &F,
    pw: &PiecewiseCharge,
    ef: f64,
    opts: FitOptions,
    eval_points: usize,
    tail_beyond: f64,
) -> f64 {
    let lo = ef + opts.domain_below_ef;
    let hi = ef + 0.2f64.max(tail_beyond);
    let xs = linspace(lo, hi, eval_points.max(2));
    let reference: Vec<f64> = xs.iter().map(|&x| curve(x)).collect();
    let peak = reference.iter().fold(0.0f64, |m, r| m.max(r.abs()));
    if peak == 0.0 {
        return 0.0;
    }
    let floor = 1e-3 * peak;
    let mut acc = 0.0;
    for (&x, &r) in xs.iter().zip(&reference) {
        let m = pw.eval(x);
        let rel = (m - r) / (r.abs() + floor);
        acc += rel * rel;
    }
    100.0 * (acc / xs.len() as f64).sqrt()
}

/// Fits with breakpoints optimised numerically (Nelder–Mead over the
/// offset vector) instead of the paper's published fixed values.
///
/// Returns the fitted curve and the optimised spec. This implements the
/// paper's "purely numerical … boundaries calculated to minimise the RMS
/// deviation" procedure and is also the machinery behind the accuracy/
/// speed trade-off study the paper mentions as ongoing work.
///
/// # Errors
///
/// Propagates fitting errors at the optimum; candidate evaluations that
/// fail during the search are penalised rather than propagated.
pub fn fit_with_optimized_breakpoints<F: Fn(f64) -> f64>(
    curve: &F,
    ef: f64,
    initial: &PiecewiseSpec,
    opts: FitOptions,
) -> Result<(PiecewiseCharge, PiecewiseSpec), CompactModelError> {
    let degrees = initial.degrees.clone();
    let x0 = initial.offsets.clone();
    let objective = |offsets: &[f64]| -> f64 {
        // Penalise non-increasing or out-of-window candidates.
        let mut sorted_ok = offsets.windows(2).all(|w| w[1] > w[0] + 1e-4);
        if offsets[0] <= opts.domain_below_ef + 0.02 {
            sorted_ok = false;
        }
        if !sorted_ok {
            return 1e6;
        }
        match PiecewiseSpec::custom(offsets.to_vec(), degrees.clone())
            .and_then(|spec| fit_piecewise(curve, ef, &spec, opts).map(|pw| (spec, pw)))
        {
            Ok((_, pw)) => fit_error_relative_percent(curve, &pw, ef, opts, 400, 0.25),
            Err(_) => 1e6,
        }
    };
    let minimum = nelder_mead(
        objective,
        &x0,
        NelderMeadOptions {
            initial_step: 0.2,
            f_tol: 1e-6,
            max_evals: 400,
        },
    );
    let spec = PiecewiseSpec::custom(minimum.x.clone(), degrees)?;
    let pw = fit_piecewise(curve, ef, &spec, opts)?;
    Ok((pw, spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth saturating stand-in with the right qualitative shape:
    /// softplus-like decay to zero above `ef`, linear growth below.
    fn synthetic_curve(ef: f64, kt: f64) -> impl Fn(f64) -> f64 {
        move |v: f64| {
            let eta = (ef - v) / kt;
            // kt·ln(1+e^η) ~ linear for η ≫ 0, → 0 for η ≪ 0.
            let scaled = if eta > 0.0 {
                eta + (-eta).exp().ln_1p()
            } else {
                eta.exp().ln_1p()
            };
            1e-10 * kt * scaled / 0.0259
        }
    }

    #[test]
    fn model1_fit_is_c1_continuous() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let pw =
            fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), FitOptions::default()).unwrap();
        for (dv, ds) in pw.continuity_jumps() {
            assert!(dv.abs() < 1e-16, "value jump {dv}");
            assert!(ds.abs() < 1e-14, "slope jump {ds}");
        }
    }

    #[test]
    fn model2_fit_is_c1_continuous_and_accurate() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        // Absolute weighting: this test measures peak-normalised accuracy.
        let opts = FitOptions {
            relative_weight_floor: 1e12,
            ..FitOptions::default()
        };
        let pw = fit_piecewise(&curve, ef, &PiecewiseSpec::model2(), opts).unwrap();
        for (dv, ds) in pw.continuity_jumps() {
            assert!(dv.abs() < 1e-16);
            assert!(ds.abs() < 1e-14);
        }
        let err = fit_error_percent(&curve, &pw, ef, opts, 500);
        assert!(err < 10.0, "fit error {err}%");
    }

    #[test]
    fn model2_beats_model1_on_the_real_charge_curve() {
        // On the theoretical Q_S of the paper's device — the curve both
        // models were designed around — the four-piece model must win.
        use cntfet_reference::{ChargeModel, DeviceParams};
        let params = DeviceParams::paper_default();
        let ef = params.fermi_level.value();
        let charge = ChargeModel::new(&params, 1e-9);
        let curve = |v: f64| charge.q_s(v);
        let o = FitOptions::default();
        let m1 = fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), o).unwrap();
        let m2 = fit_piecewise(&curve, ef, &PiecewiseSpec::model2(), o).unwrap();
        let e1 = fit_error_percent(&curve, &m1, ef, o, 300);
        let e2 = fit_error_percent(&curve, &m2, ef, o, 300);
        assert!(e2 < e1, "model2 {e2}% should beat model1 {e1}%");
    }

    #[test]
    fn global_fit_improves_charge_rms_over_greedy() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let o = FitOptions::default();
        let greedy = fit_piecewise(&curve, ef, &PiecewiseSpec::model2(), o).unwrap();
        let global = fit_piecewise_global(&curve, ef, &PiecewiseSpec::model2(), o).unwrap();
        let eg = fit_error_percent(&curve, &greedy, ef, o, 500);
        let eo = fit_error_percent(&curve, &global, ef, o, 500);
        assert!(eo < eg, "global {eo}% should beat greedy {eg}%");
        // And it must preserve C¹ continuity exactly (hard constraints).
        for (dv, ds) in global.continuity_jumps() {
            assert!(dv.abs() < 1e-16, "value jump {dv}");
            assert!(ds.abs() < 1e-13, "slope jump {ds}");
        }
    }

    #[test]
    fn zero_region_is_exactly_zero() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let pw =
            fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), FitOptions::default()).unwrap();
        assert_eq!(pw.eval(ef + 0.2), 0.0);
        assert_eq!(pw.eval(1.0), 0.0);
    }

    #[test]
    fn linear_region_extends_as_tangent() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let pw =
            fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), FitOptions::default()).unwrap();
        // Below the first breakpoint the polynomial is degree ≤ 1.
        assert!(pw.polynomials()[0].degree().unwrap_or(0) <= 1);
        // And it stays close to the (asymptotically linear) curve well
        // below the fitting window.
        let v = ef - 1.0;
        let rel = (pw.eval(v) - curve(v)).abs() / curve(v);
        assert!(rel < 0.05, "extrapolation error {rel}");
    }

    #[test]
    fn fit_domain_must_cover_first_region() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let bad = FitOptions {
            domain_below_ef: -0.05, // above Model 1's −0.08 offset
            ..Default::default()
        };
        assert!(fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), bad).is_err());
    }

    #[test]
    fn optimized_breakpoints_do_not_regress() {
        let ef = -0.32;
        let curve = synthetic_curve(ef, 0.0259);
        let o = FitOptions::default();
        let fixed = fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), o).unwrap();
        let e_fixed = fit_error_percent(&curve, &fixed, ef, o, 400);
        let (opt, spec) =
            fit_with_optimized_breakpoints(&curve, ef, &PiecewiseSpec::model1(), o).unwrap();
        let e_opt = fit_error_percent(&curve, &opt, ef, o, 400);
        assert!(
            e_opt <= e_fixed * 1.02,
            "optimised {e_opt}% vs fixed {e_fixed}%"
        );
        assert!(spec.offsets.windows(2).all(|w| w[1] > w[0]));
    }
}
