//! Model specifications: where the paper's regions sit and which
//! polynomial order each uses.

use crate::error::CompactModelError;

/// A piecewise model specification: interior breakpoint *offsets* measured
/// from `E_F/q` (volts) and polynomial degrees for every region except the
/// last, which is identically zero (the paper's "zero" region).
///
/// # Examples
///
/// ```
/// use cntfet_core::spec::PiecewiseSpec;
/// let m2 = PiecewiseSpec::model2();
/// assert_eq!(m2.offsets, vec![-0.28, -0.03, 0.12]);
/// assert_eq!(m2.degrees, vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseSpec {
    /// Breakpoint offsets from `E_F/q`, ascending, volts.
    pub offsets: Vec<f64>,
    /// Polynomial degree of each region left of the final zero region.
    pub degrees: Vec<usize>,
}

impl PiecewiseSpec {
    /// The paper's **Model 1**: linear below `E_F/q − 0.08 V`, quadratic
    /// between `±0.08 V`, zero above.
    pub fn model1() -> Self {
        PiecewiseSpec {
            offsets: vec![-0.08, 0.08],
            degrees: vec![1, 2],
        }
    }

    /// The paper's **Model 2**: linear below `E_F/q − 0.28 V`, quadratic
    /// on `(−0.28, −0.03]`, cubic on `(−0.03, 0.12]`, zero above.
    pub fn model2() -> Self {
        PiecewiseSpec {
            offsets: vec![-0.28, -0.03, 0.12],
            degrees: vec![1, 2, 3],
        }
    }

    /// A custom specification.
    ///
    /// # Errors
    ///
    /// Returns [`CompactModelError::InvalidSpec`] if the lengths disagree,
    /// the offsets are not strictly increasing, any degree exceeds 3, or
    /// there are no regions.
    pub fn custom(offsets: Vec<f64>, degrees: Vec<usize>) -> Result<Self, CompactModelError> {
        if offsets.is_empty() || degrees.len() != offsets.len() {
            return Err(CompactModelError::InvalidSpec(format!(
                "need one degree per non-zero region: {} offsets vs {} degrees",
                offsets.len(),
                degrees.len()
            )));
        }
        for w in offsets.windows(2) {
            // partial_cmp so NaN values are rejected, not let through.
            if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
                return Err(CompactModelError::InvalidSpec(format!(
                    "offsets must be strictly increasing ({} then {})",
                    w[0], w[1]
                )));
            }
        }
        if let Some(&d) = degrees.iter().find(|&&d| d > 3) {
            return Err(CompactModelError::InvalidSpec(format!(
                "degree {d} exceeds the closed-form limit of 3"
            )));
        }
        Ok(PiecewiseSpec { offsets, degrees })
    }

    /// Number of regions including the final zero region.
    pub fn region_count(&self) -> usize {
        self.offsets.len() + 1
    }

    /// Absolute breakpoints for a device with Fermi level `ef` (eV; the
    /// breakpoints live at `E_F/q + offset` volts).
    pub fn absolute_breakpoints(&self, ef: f64) -> Vec<f64> {
        self.offsets.iter().map(|o| ef + o).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model1_matches_paper_section_iv() {
        let m = PiecewiseSpec::model1();
        assert_eq!(m.region_count(), 3);
        assert_eq!(m.offsets, vec![-0.08, 0.08]);
        assert_eq!(m.degrees, vec![1, 2]);
    }

    #[test]
    fn model2_matches_paper_section_iv() {
        let m = PiecewiseSpec::model2();
        assert_eq!(m.region_count(), 4);
        assert_eq!(m.offsets, vec![-0.28, -0.03, 0.12]);
        assert_eq!(m.degrees, vec![1, 2, 3]);
    }

    #[test]
    fn absolute_breakpoints_shift_with_fermi_level() {
        let m = PiecewiseSpec::model1();
        let bps = m.absolute_breakpoints(-0.32);
        assert!((bps[0] + 0.40).abs() < 1e-12);
        assert!((bps[1] + 0.24).abs() < 1e-12);
    }

    #[test]
    fn custom_validation() {
        assert!(PiecewiseSpec::custom(vec![], vec![]).is_err());
        assert!(PiecewiseSpec::custom(vec![0.1, 0.0], vec![1, 2]).is_err());
        assert!(PiecewiseSpec::custom(vec![0.0, 0.1], vec![1]).is_err());
        assert!(PiecewiseSpec::custom(vec![0.0], vec![4]).is_err());
        assert!(PiecewiseSpec::custom(vec![-0.1, 0.1], vec![1, 3]).is_ok());
    }
}
