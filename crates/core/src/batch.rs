//! Batched bias-grid evaluation of the compact model.
//!
//! The paper motivates the compact model with "implementation in
//! circuit-level … simulators where large numbers of such devices may be
//! used" — which makes whole *grids* of bias points, not single points,
//! the unit of work. This module evaluates [`CompactCntFet`] over a
//! rectangular `V_G × V_DS` grid (or an arbitrary list of bias points)
//! with a rayon-parallel engine when the `parallel` feature is on
//! (the default), and an identical sequential loop when it is off.
//!
//! Parallel and sequential paths run the *same* per-point closed-form
//! evaluation, so their results are bitwise identical; the property tests
//! in `crates/core/tests/proptests.rs` pin that down.
//!
//! Worker count follows rayon's convention: the `RAYON_NUM_THREADS`
//! environment variable, defaulting to the machine's available
//! parallelism.
//!
//! # Examples
//!
//! ```
//! use cntfet_core::batch::BiasGrid;
//! use cntfet_core::CompactCntFet;
//! use cntfet_reference::DeviceParams;
//!
//! let model = CompactCntFet::model2(DeviceParams::paper_default())?;
//! let grid = BiasGrid::rectangular(vec![0.3, 0.45, 0.6], vec![0.0, 0.2, 0.4, 0.6]);
//! let table = grid.evaluate(&model)?;
//! // One drain current per (vg, vds) pair, vg-major:
//! assert_eq!(table.ids.len(), 12);
//! assert!(table.ids_at(2, 3) > table.ids_at(0, 3)); // more gate, more current
//! # Ok::<(), cntfet_core::CompactModelError>(())
//! ```

use crate::device::CompactCntFet;
use crate::error::CompactModelError;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// A batch of bias points: a rectangular `V_G × V_DS` grid flattened
/// vg-major, or an arbitrary point list.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasGrid {
    /// Gate voltages (the slow, outer axis of the flattened grid).
    vg: Vec<f64>,
    /// Drain voltages (the fast, inner axis of the flattened grid).
    vds: Vec<f64>,
}

impl BiasGrid {
    /// A rectangular grid: every `vg` paired with every `vds`.
    pub fn rectangular(vg: Vec<f64>, vds: Vec<f64>) -> Self {
        Self { vg, vds }
    }

    /// The gate-voltage axis.
    pub fn vg(&self) -> &[f64] {
        &self.vg
    }

    /// The drain-voltage axis.
    pub fn vds(&self) -> &[f64] {
        &self.vds
    }

    /// Number of bias points in the grid.
    pub fn len(&self) -> usize {
        self.vg.len() * self.vds.len()
    }

    /// Whether the grid contains no bias points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The flattened (vg-major) bias-point list.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.len());
        for &vg in &self.vg {
            for &vds in &self.vds {
                out.push((vg, vds));
            }
        }
        out
    }

    /// Evaluates `model` over the whole grid, in parallel when the
    /// `parallel` feature is enabled.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CompactModelError`] any point produces.
    pub fn evaluate(&self, model: &CompactCntFet) -> Result<GridIds, CompactModelError> {
        let ids = ids_points(model, &self.points())?;
        Ok(GridIds {
            grid: self.clone(),
            ids,
        })
    }

    /// Evaluates `model` over the whole grid strictly sequentially,
    /// regardless of features — the reference path for equivalence tests
    /// and speed-up baselines.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CompactModelError`] any point produces.
    pub fn evaluate_sequential(&self, model: &CompactCntFet) -> Result<GridIds, CompactModelError> {
        let ids = ids_points_sequential(model, &self.points())?;
        Ok(GridIds {
            grid: self.clone(),
            ids,
        })
    }
}

/// Drain currents over a [`BiasGrid`], flattened vg-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GridIds {
    /// The grid the currents were evaluated on.
    pub grid: BiasGrid,
    /// `ids[i * grid.vds().len() + j]` is the current at
    /// `(grid.vg()[i], grid.vds()[j])`, in amperes.
    pub ids: Vec<f64>,
}

impl GridIds {
    /// Drain current at grid indices `(vg_index, vds_index)`, in amperes.
    pub fn ids_at(&self, vg_index: usize, vds_index: usize) -> f64 {
        self.ids[vg_index * self.grid.vds.len() + vds_index]
    }

    /// The output characteristic (one row of the grid) at `vg_index`.
    pub fn row(&self, vg_index: usize) -> &[f64] {
        let w = self.grid.vds.len();
        &self.ids[vg_index * w..(vg_index + 1) * w]
    }
}

/// Evaluates `model.ids` over an arbitrary bias-point list, in parallel
/// when the `parallel` feature is enabled (the default).
///
/// Results are in input order and identical to the sequential loop —
/// the same closed-form evaluation runs either way.
///
/// # Errors
///
/// Propagates the first [`CompactModelError`] any point produces.
#[cfg(feature = "parallel")]
pub fn ids_points(
    model: &CompactCntFet,
    points: &[(f64, f64)],
) -> Result<Vec<f64>, CompactModelError> {
    let evaluated: Vec<Result<f64, CompactModelError>> = points
        .par_iter()
        .map(|&(vg, vds)| model.ids(vg, vds))
        .collect();
    evaluated.into_iter().collect()
}

/// Evaluates `model.ids` over an arbitrary bias-point list (sequential
/// build: the `parallel` feature is disabled).
///
/// # Errors
///
/// Propagates the first [`CompactModelError`] any point produces.
#[cfg(not(feature = "parallel"))]
pub fn ids_points(
    model: &CompactCntFet,
    points: &[(f64, f64)],
) -> Result<Vec<f64>, CompactModelError> {
    ids_points_sequential(model, points)
}

/// The strictly sequential evaluation loop — the baseline `ids_points`
/// must match bitwise.
///
/// # Errors
///
/// Propagates the first [`CompactModelError`] any point produces.
pub fn ids_points_sequential(
    model: &CompactCntFet,
    points: &[(f64, f64)],
) -> Result<Vec<f64>, CompactModelError> {
    points.iter().map(|&(vg, vds)| model.ids(vg, vds)).collect()
}

/// Whether this build evaluates batches in parallel.
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

impl CompactCntFet {
    /// Batched drain current over arbitrary `(vg, vds)` points — the
    /// rayon-parallel engine behind [`BiasGrid::evaluate`], exposed for
    /// callers that already hold a point list.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CompactModelError`] any point produces.
    pub fn ids_batch(&self, points: &[(f64, f64)]) -> Result<Vec<f64>, CompactModelError> {
        ids_points(self, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cntfet_reference::DeviceParams;

    fn model() -> CompactCntFet {
        CompactCntFet::model2(DeviceParams::paper_default()).unwrap()
    }

    #[test]
    fn grid_flattening_is_vg_major() {
        let g = BiasGrid::rectangular(vec![0.1, 0.2], vec![0.0, 0.3, 0.6]);
        assert_eq!(g.len(), 6);
        assert_eq!(
            g.points(),
            vec![
                (0.1, 0.0),
                (0.1, 0.3),
                (0.1, 0.6),
                (0.2, 0.0),
                (0.2, 0.3),
                (0.2, 0.6)
            ]
        );
    }

    #[test]
    fn batched_matches_sequential_bitwise() {
        let m = model();
        let g = BiasGrid::rectangular(
            (0..7).map(|i| 0.3 + 0.05 * i as f64).collect(),
            (0..31).map(|i| 0.02 * i as f64).collect(),
        );
        let par = g.evaluate(&m).unwrap();
        let seq = g.evaluate_sequential(&m).unwrap();
        assert_eq!(
            par.ids, seq.ids,
            "parallel and sequential must agree bitwise"
        );
    }

    #[test]
    fn batched_matches_scalar_calls() {
        let m = model();
        let points = [(0.3, 0.1), (0.45, 0.25), (0.6, 0.6)];
        let batch = m.ids_batch(&points).unwrap();
        for (k, &(vg, vds)) in points.iter().enumerate() {
            assert_eq!(batch[k], m.ids(vg, vds).unwrap());
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let m = model();
        let g = BiasGrid::rectangular(vec![], vec![0.1, 0.2]);
        assert!(g.is_empty());
        assert!(g.evaluate(&m).unwrap().ids.is_empty());
    }

    #[test]
    fn grid_accessors_index_consistently() {
        let m = model();
        let g = BiasGrid::rectangular(vec![0.2, 0.4, 0.6], vec![0.0, 0.3, 0.6]);
        let r = g.evaluate(&m).unwrap();
        assert_eq!(r.row(1)[2], r.ids_at(1, 2));
        assert_eq!(r.ids_at(2, 1), m.ids(0.6, 0.3).unwrap());
    }
}
