//! Property-based tests for the compact model's structural invariants.

use cntfet_core::batch::{ids_points, ids_points_sequential, BiasGrid};
use cntfet_core::fit::{fit_piecewise, FitOptions};
use cntfet_core::piecewise::PiecewiseCharge;
use cntfet_core::solver::ClosedFormScf;
use cntfet_core::spec::PiecewiseSpec;
use cntfet_numerics::polynomial::Polynomial;
use proptest::prelude::*;

/// A softplus-like monotone decreasing charge curve with tunable scale
/// and sharpness — the qualitative family the real `q·N_S` lives in.
fn softplus_curve(ef: f64, kt: f64, scale: f64) -> impl Fn(f64) -> f64 {
    move |v: f64| {
        let eta = (ef - v) / kt;
        let f0 = if eta > 0.0 {
            eta + (-eta).exp().ln_1p()
        } else {
            eta.exp().ln_1p()
        };
        scale * kt * f0
    }
}

/// A C¹ two-region decreasing test curve for solver properties.
fn two_region_charge(k: f64, b: f64) -> PiecewiseCharge {
    // Quadratic k(v−b)² left of b, zero right of b; tangent-linear left
    // of b−0.2.
    let p2 = Polynomial::new(vec![k * b * b, -2.0 * k * b, k]);
    let (v, s) = p2.eval_with_derivative(b - 0.2);
    let p1 = Polynomial::new(vec![v - s * (b - 0.2), s]);
    PiecewiseCharge::new(vec![b - 0.2, b], vec![p1, p2, Polynomial::zero()])
        .expect("valid test curve")
}

/// One fitted Model 2 shared by the batch properties (fitting per case
/// would dominate the runtime without exercising anything new).
fn paper_model2() -> &'static cntfet_core::CompactCntFet {
    use std::sync::OnceLock;
    static MODEL: OnceLock<cntfet_core::CompactCntFet> = OnceLock::new();
    MODEL.get_or_init(|| {
        cntfet_core::CompactCntFet::model2(cntfet_reference::DeviceParams::paper_default())
            .expect("paper model 2 fit")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fitted_curves_are_c1_at_interior_joints(
        ef in -0.5f64..-0.1,
        kt in 0.012f64..0.04,
        scale in 0.5f64..2.0,
    ) {
        let curve = softplus_curve(ef, kt, scale * 1e-10 / 0.026);
        let pw = fit_piecewise(&curve, ef, &PiecewiseSpec::model2(), FitOptions::default())
            .expect("fit");
        let jumps = pw.continuity_jumps();
        // All interior joints C¹; the zero joint C¹ under default opts.
        for (dv, ds) in jumps {
            prop_assert!(dv.abs() < 1e-15, "value jump {dv}");
            prop_assert!(ds.abs() < 1e-12, "slope jump {ds}");
        }
    }

    #[test]
    fn fitted_zero_region_is_exactly_zero(
        ef in -0.5f64..-0.1,
        kt in 0.012f64..0.04,
        probe in 0.15f64..2.0,
    ) {
        let curve = softplus_curve(ef, kt, 1e-10 / 0.026);
        let pw = fit_piecewise(&curve, ef, &PiecewiseSpec::model1(), FitOptions::default())
            .expect("fit");
        prop_assert_eq!(pw.eval(ef + probe), 0.0);
    }

    #[test]
    fn closed_form_root_always_satisfies_residual(
        k in 1e-10f64..1e-9,
        b in -0.4f64..0.0,
        qt in 0.0f64..2e-10,
        vds in 0.0f64..0.8,
        c_total in 5e-11f64..4e-10,
    ) {
        let charge = two_region_charge(k, b);
        let scf = ClosedFormScf::new(charge, c_total);
        let v = scf.solve(qt, vds).expect("solve");
        let g = scf.residual(v, qt, vds);
        prop_assert!(g.abs() < 1e-16, "residual {g} at root {v}");
    }

    #[test]
    fn closed_form_root_is_monotone_in_terminal_charge(
        k in 1e-10f64..1e-9,
        b in -0.4f64..0.0,
        vds in 0.0f64..0.6,
        c_total in 5e-11f64..4e-10,
    ) {
        let charge = two_region_charge(k, b);
        let scf = ClosedFormScf::new(charge, c_total);
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let qt = i as f64 * 2e-11;
            let v = scf.solve(qt, vds).expect("solve");
            prop_assert!(v <= prev + 1e-12, "root must fall as qt rises");
            prev = v;
        }
    }

    #[test]
    fn closed_form_matches_brute_force_bisection(
        k in 1e-10f64..1e-9,
        b in -0.4f64..0.0,
        qt in 0.0f64..2e-10,
        vds in 0.0f64..0.8,
    ) {
        let c_total = 1.7e-10;
        let charge = two_region_charge(k, b);
        let scf = ClosedFormScf::new(charge, c_total);
        let closed = scf.solve(qt, vds).expect("solve");
        let (mut lo, mut hi) = (-5.0, 5.0);
        for _ in 0..200 {
            let m = 0.5 * (lo + hi);
            if scf.residual(m, qt, vds) < 0.0 { lo = m; } else { hi = m; }
        }
        let brute = 0.5 * (lo + hi);
        prop_assert!((closed - brute).abs() < 1e-8, "{closed} vs {brute}");
    }

    #[test]
    fn batched_grid_equals_scalar_loop(
        vg in proptest::collection::vec(0.0f64..0.8, 1..6),
        vds in proptest::collection::vec(0.0f64..0.7, 1..12),
    ) {
        let m = paper_model2();
        let grid = BiasGrid::rectangular(vg, vds);
        let par = grid.evaluate(m).expect("parallel batch");
        let seq = grid.evaluate_sequential(m).expect("sequential batch");
        // The parallel engine runs the same closed-form evaluation per
        // point, so the results must be *bitwise* identical, not merely
        // within tolerance.
        prop_assert_eq!(&par.ids, &seq.ids);
        // And both must equal scalar calls at every grid point.
        for (i, &g) in grid.vg().iter().enumerate() {
            for (j, &d) in grid.vds().iter().enumerate() {
                prop_assert_eq!(par.ids_at(i, j), m.ids(g, d).expect("scalar"));
            }
        }
    }

    #[test]
    fn batched_points_equal_scalar_loop(
        raw in proptest::collection::vec(0.0f64..0.8, 2..40),
    ) {
        let m = paper_model2();
        let points: Vec<(f64, f64)> = raw.windows(2).map(|w| (w[0], w[1] * 0.75)).collect();
        let par = ids_points(m, &points).expect("batched");
        let seq = ids_points_sequential(m, &points).expect("sequential");
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn spec_roundtrips_absolute_breakpoints(
        ef in -0.6f64..0.0,
        o1 in -0.45f64..-0.2,
        o2 in -0.15f64..0.0,
        o3 in 0.05f64..0.2,
    ) {
        let spec = PiecewiseSpec::custom(vec![o1, o2, o3], vec![1, 2, 3]).expect("spec");
        let bps = spec.absolute_breakpoints(ef);
        prop_assert!((bps[0] - (ef + o1)).abs() < 1e-15);
        prop_assert!((bps[2] - (ef + o3)).abs() < 1e-15);
        prop_assert!(bps.windows(2).all(|w| w[1] > w[0]));
    }
}
