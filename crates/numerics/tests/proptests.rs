//! Property-based tests for the numerical substrate.

use cntfet_numerics::fit::{polyfit, polyfit_constrained, LinearConstraint};
use cntfet_numerics::interp::{linspace, LinearInterpolator, PchipInterpolator};
use cntfet_numerics::linalg::Matrix;
use cntfet_numerics::polynomial::Polynomial;
use cntfet_numerics::quadrature::{adaptive_simpson, gauss_legendre};
use cntfet_numerics::rootfind::{bisection, brent, RootFindOptions};
use cntfet_numerics::roots::{real_roots, solve_cubic, solve_quadratic};
use cntfet_numerics::sparse::{DenseLuSolver, LinearSolver, SparseLuSolver, TripletMatrix};
use cntfet_numerics::stats::{relative_rms_percent, rms};
use proptest::prelude::*;

fn coeff() -> impl Strategy<Value = f64> {
    prop_oneof![(-10.0f64..10.0), (-0.1f64..0.1)]
}

proptest! {
    #[test]
    fn cubic_roots_have_small_residual(a in coeff(), b in coeff(), c in coeff(), d in coeff()) {
        prop_assume!(a.abs() > 1e-3);
        let roots = solve_cubic(a, b, c, d);
        prop_assert!(!roots.is_empty(), "odd degree must yield a real root");
        for r in roots {
            let res = ((a * r + b) * r + c) * r + d;
            let scale = a.abs() * r.abs().powi(3) + b.abs() * r * r + c.abs() * r.abs() + d.abs();
            prop_assert!(res.abs() <= 1e-6 * (1.0 + scale.abs()), "residual {res} at {r}");
        }
    }

    #[test]
    fn quadratic_roots_have_small_residual(a in coeff(), b in coeff(), c in coeff()) {
        for r in solve_quadratic(a, b, c) {
            let res = (a * r + b) * r + c;
            let scale = a.abs() * r * r + b.abs() * r.abs() + c.abs();
            prop_assert!(res.abs() <= 1e-7 * (1.0 + scale.abs()), "residual {res} at {r}");
        }
    }

    #[test]
    fn from_roots_roundtrip(r1 in -5.0f64..5.0, r2 in -5.0f64..5.0, r3 in -5.0f64..5.0) {
        // Keep the roots separated so dedup cannot merge them.
        prop_assume!((r1 - r2).abs() > 0.1 && (r2 - r3).abs() > 0.1 && (r1 - r3).abs() > 0.1);
        let p = Polynomial::from_roots(&[r1, r2, r3]);
        let got = real_roots(&p);
        prop_assert_eq!(got.len(), 3);
        let mut want = [r1, r2, r3];
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-6 * (1.0 + w.abs()), "{:?} vs {:?}", got, want);
        }
    }

    #[test]
    fn shift_argument_is_translation(coeffs in proptest::collection::vec(coeff(), 1..5), s in -3.0f64..3.0, x in -3.0f64..3.0) {
        let p = Polynomial::new(coeffs);
        let q = p.shift_argument(s);
        let direct = p.eval(x + s);
        let shifted = q.eval(x);
        let scale = 1.0 + direct.abs();
        prop_assert!((direct - shifted).abs() < 1e-9 * scale);
    }

    #[test]
    fn simpson_matches_exact_polynomial_integral(coeffs in proptest::collection::vec(coeff(), 1..5), a in -2.0f64..0.0, b in 0.1f64..2.0) {
        let p = Polynomial::new(coeffs);
        let exact = p.integrate(a, b);
        let num = adaptive_simpson(&|x: f64| p.eval(x), a, b, 1e-13, 40);
        prop_assert!((exact - num).abs() < 1e-8 * (1.0 + exact.abs()));
    }

    #[test]
    fn gauss_legendre_matches_exact_polynomial_integral(coeffs in proptest::collection::vec(coeff(), 1..8), a in -2.0f64..0.0, b in 0.1f64..2.0) {
        let p = Polynomial::new(coeffs);
        let exact = p.integrate(a, b);
        let num = gauss_legendre(&|x: f64| p.eval(x), a, b, 8);
        prop_assert!((exact - num).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn lu_solve_reproduces_rhs(n in 1usize..6, seed in 0u64..1000) {
        // Diagonally dominant matrices are always solvable.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            m[(i, i)] += n as f64 + 1.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn polyfit_interpolates_exact_data(c0 in coeff(), c1 in coeff(), c2 in coeff()) {
        let xs = linspace(-1.0, 1.0, 12);
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x + c2 * x * x).collect();
        let p = polyfit(&xs, &ys, 2).unwrap();
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((p.eval(x) - y).abs() < 1e-7 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn constrained_fit_always_honours_constraint(c0 in coeff(), c1 in coeff(), v in -5.0f64..5.0) {
        let xs = linspace(0.0, 1.0, 15);
        let ys: Vec<f64> = xs.iter().map(|&x| c0 + c1 * x).collect();
        let c = LinearConstraint::value_at(0.5, v, 2);
        let p = polyfit_constrained(&xs, &ys, 2, &[c]).unwrap();
        prop_assert!((p.eval(0.5) - v).abs() < 1e-7 * (1.0 + v.abs()));
    }

    #[test]
    fn bisection_and_brent_agree(shift in -0.9f64..0.9) {
        let f = |x: f64| x * x * x + x - shift;
        let o = RootFindOptions::default();
        let r1 = bisection(f, -2.0, 2.0, o).unwrap();
        let r2 = brent(f, -2.0, 2.0, o).unwrap();
        prop_assert!((r1 - r2).abs() < 1e-7);
    }

    #[test]
    fn linear_interp_bounded_by_data(knots in proptest::collection::vec(-5.0f64..5.0, 3..8), x in 0.0f64..1.0) {
        let n = knots.len();
        let xs = linspace(0.0, 1.0, n);
        let li = LinearInterpolator::new(xs, knots.clone()).unwrap();
        let v = li.eval(x);
        let lo = knots.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = knots.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn pchip_bounded_by_data(knots in proptest::collection::vec(-5.0f64..5.0, 3..8), x in 0.0f64..1.0) {
        let n = knots.len();
        let xs = linspace(0.0, 1.0, n);
        let p = PchipInterpolator::new(xs, knots.clone()).unwrap();
        let v = p.eval(x);
        let lo = knots.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = knots.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Monotone Hermite interpolation never overshoots the data range.
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v = {v} outside [{lo}, {hi}]");
    }

    #[test]
    fn rms_scales_linearly(values in proptest::collection::vec(-10.0f64..10.0, 1..20), s in 0.1f64..10.0) {
        let scaled: Vec<f64> = values.iter().map(|v| v * s).collect();
        prop_assert!((rms(&scaled) - s * rms(&values)).abs() < 1e-9 * (1.0 + rms(&values)));
    }

    #[test]
    fn relative_rms_is_zero_iff_identical(values in proptest::collection::vec(-10.0f64..10.0, 2..20)) {
        prop_assume!(values.iter().any(|v| v.abs() > 1e-6));
        prop_assert_eq!(relative_rms_percent(&values, &values), 0.0);
        let mut perturbed = values.clone();
        perturbed[0] += 1.0;
        prop_assert!(relative_rms_percent(&perturbed, &values) > 0.0);
    }

    /// Random diagonally-dominant banded systems: the sparse LU (with
    /// its cached-pattern replay) agrees with the dense fallback, both
    /// through the shared `LinearSolver` trait.
    #[test]
    fn sparse_and_dense_solvers_agree(
        diag in proptest::collection::vec(1.0f64..10.0, 4..24),
        off in proptest::collection::vec(-0.9f64..0.9, 3..23),
        rhs_scale in -5.0f64..5.0,
    ) {
        let n = diag.len().min(off.len() + 1);
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, diag[i]);
            if i + 1 < n {
                t.push(i, i + 1, off[i]);
                t.push(i + 1, i, off[i] * 0.5);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| rhs_scale * (i as f64 + 1.0)).collect();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(&a, &b).expect("dense solve");
        let xs = sparse.solve(&a, &b).expect("sparse solve");
        let scale = 1.0 + xd.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (d, s) in xd.iter().zip(&xs) {
            prop_assert!((d - s).abs() <= 1e-10 * scale, "{d} vs {s}");
        }
        // Replay the cached pattern with perturbed values: still agrees.
        let mut a2 = a.clone();
        a2.set_zero();
        for i in 0..n {
            a2.add_at(i, i, diag[i] + 0.25);
            if i + 1 < n {
                a2.add_at(i, i + 1, off[i] * 0.75);
                a2.add_at(i + 1, i, off[i] * 0.25);
            }
        }
        let xd2 = dense.solve(&a2, &b).expect("dense solve 2");
        let xs2 = sparse.solve(&a2, &b).expect("sparse refactor solve");
        prop_assert!(sparse.refactor_count() >= 1, "second factor must replay the pattern");
        for (d, s) in xd2.iter().zip(&xs2) {
            prop_assert!((d - s).abs() <= 1e-10 * scale, "{d} vs {s}");
        }
    }
}
