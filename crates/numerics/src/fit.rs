//! Polynomial least-squares fitting, optionally with linear equality
//! constraints.
//!
//! The paper fits each piecewise charge segment "according to the same rule
//! while assuring the continuity of the first derivative" — i.e. a
//! least-squares polynomial fit subject to value and slope constraints at
//! the segment boundaries. The constraint machinery here expresses exactly
//! that: a constraint is a linear functional of the coefficient vector, and
//! the constrained minimiser is obtained from the KKT system.

use crate::error::NumericsError;
use crate::linalg::{lstsq, Matrix};
use crate::polynomial::Polynomial;

/// A linear equality constraint `Σ coeffs[k] · c[k] = rhs` on the
/// coefficient vector `c` of a fitted polynomial.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Weights applied to the polynomial coefficients (ascending degree).
    pub coeffs: Vec<f64>,
    /// Required value of the linear functional.
    pub rhs: f64,
}

impl LinearConstraint {
    /// Constraint fixing the fitted polynomial's *value* at `x` to `y`:
    /// `p(x) = y`.
    pub fn value_at(x: f64, y: f64, degree: usize) -> Self {
        let coeffs = (0..=degree).map(|k| x.powi(k as i32)).collect();
        LinearConstraint { coeffs, rhs: y }
    }

    /// Constraint fixing the fitted polynomial's *derivative* at `x` to
    /// `slope`: `p'(x) = slope`.
    pub fn derivative_at(x: f64, slope: f64, degree: usize) -> Self {
        let coeffs = (0..=degree)
            .map(|k| {
                if k == 0 {
                    0.0
                } else {
                    k as f64 * x.powi(k as i32 - 1)
                }
            })
            .collect();
        LinearConstraint { coeffs, rhs: slope }
    }
}

/// Fits a polynomial of the given degree to `(xs, ys)` in the least-squares
/// sense.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] if the point count is smaller
/// than `degree + 1` or the slices disagree in length, and propagates
/// rank-deficiency errors from the QR solver (e.g. duplicated abscissae).
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Polynomial, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "xs and ys lengths differ ({} vs {})",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < degree + 1 {
        return Err(NumericsError::InvalidInput(format!(
            "need at least {} points for degree {degree}, got {}",
            degree + 1,
            xs.len()
        )));
    }
    let rows: Vec<Vec<f64>> = xs
        .iter()
        .map(|&x| (0..=degree).map(|k| x.powi(k as i32)).collect())
        .collect();
    let a = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
    let c = lstsq(&a, ys)?;
    Ok(Polynomial::new(c))
}

/// Fits a polynomial of the given degree to `(xs, ys)` subject to linear
/// equality constraints, by solving the KKT system
///
/// ```text
/// | 2 AᵀA  Cᵀ | | c |   | 2 Aᵀy |
/// | C      0  | | λ | = | d     |
/// ```
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInput`] on inconsistent input sizes or
/// more constraints than coefficients, and
/// [`NumericsError::SingularMatrix`] when the KKT system is singular
/// (linearly dependent constraints).
pub fn polyfit_constrained(
    xs: &[f64],
    ys: &[f64],
    degree: usize,
    constraints: &[LinearConstraint],
) -> Result<Polynomial, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "xs and ys lengths differ ({} vs {})",
            xs.len(),
            ys.len()
        )));
    }
    let n = degree + 1;
    let m = constraints.len();
    if m > n {
        return Err(NumericsError::InvalidInput(format!(
            "{m} constraints exceed {n} coefficients"
        )));
    }
    if m == 0 {
        return polyfit(xs, ys, degree);
    }
    for c in constraints {
        if c.coeffs.len() != n {
            return Err(NumericsError::InvalidInput(format!(
                "constraint has {} weights, expected {n}",
                c.coeffs.len()
            )));
        }
    }
    if xs.is_empty() {
        return Err(NumericsError::InvalidInput(
            "no data points provided".to_string(),
        ));
    }

    // Normal-equation blocks.
    let mut ata = Matrix::zeros(n, n);
    let mut aty = vec![0.0; n];
    for (&x, &y) in xs.iter().zip(ys) {
        let basis: Vec<f64> = (0..n).map(|k| x.powi(k as i32)).collect();
        for i in 0..n {
            aty[i] += basis[i] * y;
            for j in 0..n {
                ata[(i, j)] += basis[i] * basis[j];
            }
        }
    }

    let dim = n + m;
    let mut kkt = Matrix::zeros(dim, dim);
    let mut rhs = vec![0.0; dim];
    for i in 0..n {
        rhs[i] = 2.0 * aty[i];
        for j in 0..n {
            kkt[(i, j)] = 2.0 * ata[(i, j)];
        }
    }
    for (ci, c) in constraints.iter().enumerate() {
        rhs[n + ci] = c.rhs;
        for (k, &w) in c.coeffs.iter().enumerate() {
            kkt[(k, n + ci)] = w;
            kkt[(n + ci, k)] = w;
        }
    }
    let sol = kkt.solve(&rhs)?;
    Ok(Polynomial::new(sol[..n].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    fn sample<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n)
            .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
            .collect();
        let ys = xs.iter().map(|&x| f(x)).collect();
        (xs, ys)
    }

    #[test]
    fn polyfit_recovers_exact_polynomial() {
        let (xs, ys) = sample(|x| 1.0 - 2.0 * x + 0.5 * x * x, -1.0, 2.0, 20);
        let p = polyfit(&xs, &ys, 2).unwrap();
        assert!(close(p.coeff(0), 1.0, 1e-10));
        assert!(close(p.coeff(1), -2.0, 1e-10));
        assert!(close(p.coeff(2), 0.5, 1e-10));
    }

    #[test]
    fn polyfit_smooths_noise() {
        // Deterministic "noise" with zero mean over the sample.
        let (xs, mut ys) = sample(|x| 2.0 * x, 0.0, 1.0, 40);
        for (i, y) in ys.iter_mut().enumerate() {
            *y += if i % 2 == 0 { 1e-3 } else { -1e-3 };
        }
        let p = polyfit(&xs, &ys, 1).unwrap();
        assert!(close(p.coeff(1), 2.0, 1e-3));
    }

    #[test]
    fn polyfit_rejects_too_few_points() {
        assert!(matches!(
            polyfit(&[0.0, 1.0], &[0.0, 1.0], 2),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn polyfit_rejects_mismatched_lengths() {
        assert!(matches!(
            polyfit(&[0.0, 1.0, 2.0], &[0.0, 1.0], 1),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn value_constraint_is_honoured_exactly() {
        let (xs, ys) = sample(|x| x * x, 0.0, 1.0, 25);
        let c = LinearConstraint::value_at(0.0, 0.25, 2);
        let p = polyfit_constrained(&xs, &ys, 2, &[c]).unwrap();
        assert!(close(p.eval(0.0), 0.25, 1e-12));
    }

    #[test]
    fn derivative_constraint_is_honoured_exactly() {
        let (xs, ys) = sample(|x| x * x * x, -1.0, 1.0, 30);
        let c = LinearConstraint::derivative_at(0.5, 0.0, 3);
        let p = polyfit_constrained(&xs, &ys, 3, &[c]).unwrap();
        assert!(p.derivative().eval(0.5).abs() < 1e-11);
    }

    #[test]
    fn unconstrained_path_matches_polyfit() {
        let (xs, ys) = sample(|x| 3.0 + x, 0.0, 2.0, 10);
        let a = polyfit(&xs, &ys, 1).unwrap();
        let b = polyfit_constrained(&xs, &ys, 1, &[]).unwrap();
        assert!(close(a.coeff(0), b.coeff(0), 1e-10));
        assert!(close(a.coeff(1), b.coeff(1), 1e-10));
    }

    #[test]
    fn inactive_constraint_changes_nothing() {
        // Constraint already satisfied by the unconstrained optimum.
        let (xs, ys) = sample(|x| 2.0 * x, 0.0, 1.0, 15);
        let c = LinearConstraint::value_at(0.0, 0.0, 1);
        let p = polyfit_constrained(&xs, &ys, 1, &[c]).unwrap();
        assert!(close(p.coeff(1), 2.0, 1e-9));
        assert!(p.coeff(0).abs() < 1e-9);
    }

    #[test]
    fn c1_join_between_two_fitted_segments() {
        // Emulates the paper's requirement: fit the left segment freely,
        // then force the right segment to join with matching value and
        // slope at the breakpoint.
        let f = |x: f64| (2.0 * x).tanh();
        let (xl, yl) = sample(f, -2.0, 0.0, 40);
        let (xr, yr) = sample(f, 0.0, 2.0, 40);
        let left = polyfit(&xl, &yl, 3).unwrap();
        let join_v = left.eval(0.0);
        let join_s = left.derivative().eval(0.0);
        let right = polyfit_constrained(
            &xr,
            &yr,
            3,
            &[
                LinearConstraint::value_at(0.0, join_v, 3),
                LinearConstraint::derivative_at(0.0, join_s, 3),
            ],
        )
        .unwrap();
        assert!(close(right.eval(0.0), join_v, 1e-10));
        assert!(close(right.derivative().eval(0.0), join_s, 1e-10));
    }

    #[test]
    fn too_many_constraints_is_invalid() {
        let cs = vec![
            LinearConstraint::value_at(0.0, 0.0, 1),
            LinearConstraint::value_at(1.0, 1.0, 1),
            LinearConstraint::derivative_at(0.5, 1.0, 1),
        ];
        assert!(matches!(
            polyfit_constrained(&[0.0, 0.5, 1.0], &[0.0, 0.5, 1.0], 1, &cs),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn wrong_constraint_width_is_invalid() {
        let c = LinearConstraint {
            coeffs: vec![1.0],
            rhs: 0.0,
        };
        assert!(matches!(
            polyfit_constrained(&[0.0, 1.0, 2.0], &[0.0, 1.0, 2.0], 2, &[c]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn duplicate_constraints_are_singular() {
        let c = LinearConstraint::value_at(0.0, 0.0, 2);
        let r = polyfit_constrained(
            &[0.0, 0.5, 1.0, 1.5],
            &[0.0, 0.25, 1.0, 2.25],
            2,
            &[c.clone(), c],
        );
        assert!(matches!(r, Err(NumericsError::SingularMatrix { .. })));
    }
}
