//! Dense univariate polynomials with real coefficients.
//!
//! The compact model of the paper stores each piecewise charge segment as a
//! polynomial of degree ≤ 3; the closed-form self-consistent-voltage solver
//! adds and composes such segments before handing the result to
//! [`crate::roots`]. This module therefore provides exact arithmetic,
//! calculus and affine-argument composition rather than a general CAS.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A polynomial `c[0] + c[1] x + c[2] x² + …` stored densely, lowest degree
/// first.
///
/// The zero polynomial is represented by an empty coefficient vector;
/// construction trims trailing (near-)zero coefficients so that
/// [`Polynomial::degree`] is meaningful.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::polynomial::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, -3.0, 2.0]); // 1 - 3x + 2x²
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(1.0), 0.0);
/// assert_eq!(p.derivative().eval(1.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

/// Coefficients smaller than this (relative to the largest coefficient) are
/// trimmed from the high end during normalisation.
const TRIM_EPS: f64 = 1e-300;

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-degree order.
    ///
    /// Trailing exact zeros are trimmed, so `Polynomial::new(vec![1.0, 0.0])`
    /// equals `Polynomial::new(vec![1.0])`.
    pub fn new(coeffs: Vec<f64>) -> Self {
        let mut p = Polynomial { coeffs };
        p.normalize();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Polynomial::new(vec![c])
    }

    /// The monic linear polynomial `x`.
    pub fn x() -> Self {
        Polynomial::new(vec![0.0, 1.0])
    }

    /// Builds the monic polynomial with the given real roots.
    ///
    /// ```
    /// use cntfet_numerics::polynomial::Polynomial;
    /// let p = Polynomial::from_roots(&[1.0, 2.0]);
    /// assert_eq!(p.eval(1.0), 0.0);
    /// assert_eq!(p.eval(2.0), 0.0);
    /// assert_eq!(p.eval(0.0), 2.0);
    /// ```
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut p = Polynomial::constant(1.0);
        for &r in roots {
            p = &p * &Polynomial::new(vec![-r, 1.0]);
        }
        p
    }

    fn normalize(&mut self) {
        while let Some(&c) = self.coeffs.last() {
            if c == 0.0 || c.abs() < TRIM_EPS {
                self.coeffs.pop();
            } else {
                break;
            }
        }
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficients in ascending-degree order (empty for the zero
    /// polynomial).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Coefficient of `x^k` (zero when `k` exceeds the degree).
    pub fn coeff(&self, k: usize) -> f64 {
        self.coeffs.get(k).copied().unwrap_or(0.0)
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates the polynomial and its first derivative at `x` in a single
    /// Horner pass, which the safeguarded Newton polish uses.
    pub fn eval_with_derivative(&self, x: f64) -> (f64, f64) {
        let mut p = 0.0;
        let mut dp = 0.0;
        for &c in self.coeffs.iter().rev() {
            dp = dp * x + p;
            p = p * x + c;
        }
        (p, dp)
    }

    /// First derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| k as f64 * c)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Antiderivative with integration constant zero.
    pub fn antiderivative(&self) -> Polynomial {
        if self.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(0.0);
        for (k, &c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / (k as f64 + 1.0));
        }
        Polynomial::new(coeffs)
    }

    /// Definite integral over `[a, b]`.
    pub fn integrate(&self, a: f64, b: f64) -> f64 {
        let anti = self.antiderivative();
        anti.eval(b) - anti.eval(a)
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Composes with an affine argument: returns `q(x) = p(x + shift)`.
    ///
    /// The compact model uses this to express the drain charge curve
    /// `Q_D(V_SC) = Q_S(V_SC + V_DS)` on the source-charge segments without
    /// refitting.
    pub fn shift_argument(&self, shift: f64) -> Polynomial {
        // Synthetic Taylor shift: repeatedly divide by (x - (-shift)).
        if self.is_zero() || shift == 0.0 {
            return self.clone();
        }
        let n = self.coeffs.len();
        let mut work = self.coeffs.clone();
        let mut out = vec![0.0; n];
        // out[k] = p^(k)(shift)/k! obtained via repeated synthetic division
        // by (x - shift) evaluated at x = shift.
        for out_k in out.iter_mut().take(n) {
            // Synthetic division of `work` by (x - shift): remainder is
            // work evaluated at shift; quotient replaces work.
            let mut rem = 0.0;
            for c in work.iter_mut().rev() {
                let new = *c + rem * shift;
                rem = new;
                *c = new;
            }
            // After the loop `work[0]` holds the remainder; quotient is
            // work[1..] shifted down.
            *out_k = work.remove(0);
            if work.is_empty() {
                break;
            }
        }
        Polynomial::new(out)
    }

    /// L² norm of the coefficient vector; a cheap magnitude measure used by
    /// tests and conditioning heuristics.
    pub fn coeff_norm(&self) -> f64 {
        self.coeffs.iter().map(|c| c * c).sum::<f64>().sqrt()
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if first {
                first = false;
                if c < 0.0 {
                    write!(f, "-")?;
                }
            } else if c < 0.0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            match k {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == 1.0 {
                        write!(f, "x")?
                    } else {
                        write!(f, "{a} x")?
                    }
                }
                _ => {
                    if a == 1.0 {
                        write!(f, "x^{k}")?
                    } else {
                        write!(f, "{a} x^{k}")?
                    }
                }
            }
        }
        Ok(())
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (k, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(k) + rhs.coeff(k);
        }
        Polynomial::new(coeffs)
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (k, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(k) - rhs.coeff(k);
        }
        Polynomial::new(coeffs)
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        if self.is_zero() || rhs.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn new_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn zero_polynomial_properties() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.eval(3.7), 0.0);
        assert_eq!(z.derivative(), Polynomial::zero());
        assert_eq!(format!("{z}"), "0");
    }

    #[test]
    fn horner_matches_naive_eval() {
        let p = Polynomial::new(vec![2.0, -1.0, 0.5, 3.0]);
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.0, 10.0] {
            let naive = 2.0 - x + 0.5 * x * x + 3.0 * x * x * x;
            assert!(close(p.eval(x), naive, 1e-14), "x = {x}");
        }
    }

    #[test]
    fn eval_with_derivative_agrees_with_separate_eval() {
        let p = Polynomial::new(vec![1.0, 2.0, -4.0, 0.25]);
        let d = p.derivative();
        for &x in &[-1.5, 0.0, 0.7, 2.0] {
            let (v, dv) = p.eval_with_derivative(x);
            assert!(close(v, p.eval(x), 1e-14));
            assert!(close(dv, d.eval(x), 1e-14));
        }
    }

    #[test]
    fn derivative_of_cubic() {
        let p = Polynomial::new(vec![5.0, 1.0, 2.0, 4.0]);
        assert_eq!(p.derivative().coeffs(), &[1.0, 4.0, 12.0]);
    }

    #[test]
    fn antiderivative_roundtrips_derivative() {
        let p = Polynomial::new(vec![3.0, -2.0, 6.0]);
        let back = p.antiderivative().derivative();
        assert_eq!(back, p);
    }

    #[test]
    fn definite_integral_of_quadratic() {
        let p = Polynomial::new(vec![0.0, 0.0, 3.0]); // 3x²
        assert!(close(p.integrate(0.0, 2.0), 8.0, 1e-14));
        assert!(close(p.integrate(2.0, 0.0), -8.0, 1e-14));
    }

    #[test]
    fn arithmetic_identities() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let q = Polynomial::new(vec![-1.0, 4.0]);
        let sum = &p + &q;
        let diff = &sum - &q;
        assert_eq!(diff, p);
        let prod = &p * &q;
        for &x in &[-1.0, 0.0, 0.5, 2.0] {
            assert!(close(prod.eval(x), p.eval(x) * q.eval(x), 1e-13));
            assert!(close(sum.eval(x), p.eval(x) + q.eval(x), 1e-13));
        }
    }

    #[test]
    fn from_roots_vanishes_at_roots() {
        let roots = [-2.0, 0.5, 3.0];
        let p = Polynomial::from_roots(&roots);
        assert_eq!(p.degree(), Some(3));
        for &r in &roots {
            assert!(p.eval(r).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_argument_matches_direct_evaluation() {
        let p = Polynomial::new(vec![1.0, -2.0, 0.5, 0.125]);
        for &s in &[-0.7, 0.0, 0.35, 2.0] {
            let q = p.shift_argument(s);
            for &x in &[-1.0, 0.0, 0.4, 1.3] {
                assert!(
                    close(q.eval(x), p.eval(x + s), 1e-12),
                    "shift {s}, x {x}: {} vs {}",
                    q.eval(x),
                    p.eval(x + s)
                );
            }
        }
    }

    #[test]
    fn shift_argument_preserves_degree() {
        let p = Polynomial::new(vec![0.0, 0.0, 0.0, 2.0]);
        let q = p.shift_argument(1.5);
        assert_eq!(q.degree(), Some(3));
        assert!(close(q.coeff(3), 2.0, 1e-14));
    }

    #[test]
    fn display_formats_signs() {
        let p = Polynomial::new(vec![-1.0, 0.0, 2.0]);
        assert_eq!(format!("{p}"), "2 x^2 - 1");
        let q = Polynomial::new(vec![1.0, 1.0]);
        assert_eq!(format!("{q}"), "x + 1");
    }

    #[test]
    fn neg_negates_values() {
        let p = Polynomial::new(vec![1.0, -4.0, 2.0]);
        let n = -&p;
        for &x in &[-1.0, 0.0, 2.5] {
            assert_eq!(n.eval(x), -p.eval(x));
        }
    }

    #[test]
    fn coeff_out_of_range_is_zero() {
        let p = Polynomial::new(vec![1.0]);
        assert_eq!(p.coeff(5), 0.0);
    }
}
