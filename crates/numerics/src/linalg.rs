//! Dense linear algebra: matrices, LU factorisation and Householder QR.
//!
//! Sized for the workloads in this workspace — MNA systems of a few dozen
//! unknowns in the circuit simulator and small design matrices in the
//! charge-curve fitter. Row-major storage, partial pivoting, no unsafe
//! code.

use crate::error::NumericsError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::linalg::Matrix;
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[5.0, 10.0]).unwrap();
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Sets every entry to `value` in place (used to reuse assembly
    /// buffers across solver iterations without reallocating).
    pub fn fill(&mut self, value: f64) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols.max(1))) {
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `A B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] when a pivot column has no
    /// usable pivot, and [`NumericsError::InvalidInput`] for non-square
    /// input.
    pub fn lu(&self) -> Result<LuDecomposition, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidInput(format!(
                "lu requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot search.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 || !pmax.is_finite() {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                for j in (k + 1)..n {
                    let v = m * lu[(k, j)];
                    lu[(i, j)] -= v;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Solves `A x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates the factorisation errors of [`Matrix::lu`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        Ok(self.lu()?.solve(b))
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] for non-square matrices.
    /// Singular matrices yield `Ok(0.0)`.
    pub fn determinant(&self) -> Result<f64, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::InvalidInput(format!(
                "determinant requires a square matrix, got {}x{}",
                self.rows, self.cols
            )));
        }
        match self.lu() {
            Ok(f) => {
                let mut det = f.sign;
                for i in 0..self.rows {
                    det *= f.lu[(i, i)];
                }
                Ok(det)
            }
            Err(NumericsError::SingularMatrix { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// An LU factorisation `P A = L U` that can be reused for several
/// right-hand sides — the circuit simulator factors the Jacobian once per
/// Newton step and back-substitutes cheaply.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuDecomposition {
    /// Solves `A x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` disagrees with the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.perm.len();
        assert_eq!(b.len(), n, "dimension mismatch");
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }
}

/// Solves the least-squares problem `min ‖A x − b‖₂` by Householder QR.
///
/// Works for `A` with at least as many rows as columns and full column
/// rank.
///
/// # Errors
///
/// Returns [`NumericsError::RankDeficient`] when a diagonal of `R` is
/// negligible, and [`NumericsError::InvalidInput`] when `A` has fewer rows
/// than columns or `b` has the wrong length.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        return Err(NumericsError::InvalidInput(format!(
            "lstsq requires rows >= cols, got {m}x{n}"
        )));
    }
    if b.len() != m {
        return Err(NumericsError::InvalidInput(format!(
            "rhs length {} does not match row count {m}",
            b.len()
        )));
    }
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    // Scale for relative rank decisions: largest column norm of A.
    let mut col_scale = 0.0f64;
    for j in 0..n {
        let mut s = 0.0;
        for i in 0..m {
            s += a[(i, j)] * a[(i, j)];
        }
        col_scale = col_scale.max(s.sqrt());
    }
    let rank_tol = 1e-12 * col_scale.max(1e-300);
    // Householder transformations applied in place.
    for k in 0..n {
        // Norm of the k-th column below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm <= rank_tol {
            return Err(NumericsError::RankDeficient {
                columns: n,
                rank: k,
            });
        }
        let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv <= 1e-300 {
            // Column already triangular.
            continue;
        }
        r[(k, k)] = alpha;
        for i in (k + 1)..m {
            r[(i, k)] = 0.0;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to remaining columns and to b.
        for j in (k + 1)..n {
            let mut dot = 0.0;
            for i in k..m {
                let vi = if i == k { v[0] } else { v[i - k] };
                dot += vi * r[(i, j)];
            }
            let beta = 2.0 * dot / vtv;
            for i in k..m {
                let vi = if i == k { v[0] } else { v[i - k] };
                r[(i, j)] -= beta * vi;
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qtb[i];
        }
        let beta = 2.0 * dot / vtv;
        for i in k..m {
            qtb[i] -= beta * v[i - k];
        }
    }
    // Back substitution on the n×n upper triangle.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = qtb[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() <= rank_tol {
            return Err(NumericsError::RankDeficient {
                columns: n,
                rank: i,
            });
        }
        x[i] = acc / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_small_system() {
        let a = Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let x = a.solve(&[1.0, -2.0, 0.0]).unwrap();
        assert!(close(x[0], 1.0, 1e-12));
        assert!(close(x[1], -2.0, 1e-12));
        assert!(close(x[2], -2.0, 1e-12));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!(close(x[0], 3.0, 1e-14));
        assert!(close(x[1], 2.0, 1e-14));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn non_square_lu_is_invalid_input() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(NumericsError::InvalidInput(_))));
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let f = a.lu().unwrap();
        let x1 = f.solve(&[1.0, 2.0]);
        let x2 = f.solve(&[0.0, 1.0]);
        let r1 = a.mul_vec(&x1);
        let r2 = a.mul_vec(&x2);
        assert!(close(r1[0], 1.0, 1e-12) && close(r1[1], 2.0, 1e-12));
        assert!(close(r2[0], 0.0, 1e-12) && close(r2[1], 1.0, 1e-12));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(close(a.determinant().unwrap(), -2.0, 1e-12));
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(s.determinant().unwrap(), 0.0);
    }

    #[test]
    fn determinant_sign_tracks_permutations() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(close(a.determinant().unwrap(), -1.0, 1e-14));
    }

    #[test]
    fn mul_mat_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let at = a.transpose();
        let p = a.mul_mat(&at);
        assert!(close(p[(0, 0)], 5.0, 1e-14));
        assert!(close(p[(0, 1)], 11.0, 1e-14));
        assert!(close(p[(1, 1)], 25.0, 1e-14));
    }

    #[test]
    fn lstsq_exact_fit_recovers_solution() {
        // Overdetermined but consistent.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x = lstsq(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!(close(x[0], 1.0, 1e-12));
        assert!(close(x[1], 2.0, 1e-12));
    }

    #[test]
    fn lstsq_minimises_residual() {
        // Fit y = c0 + c1 x to noisy points; residual must be orthogonal to
        // the column space (normal equations check).
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.1, 0.9, 2.1, 2.9];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let a = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let c = lstsq(&a, &ys).unwrap();
        let resid: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| y - (c[0] + c[1] * x))
            .collect();
        let dot0: f64 = resid.iter().sum();
        let dot1: f64 = resid.iter().zip(&xs).map(|(r, &x)| r * x).sum();
        assert!(dot0.abs() < 1e-12, "{dot0}");
        assert!(dot1.abs() < 1e-12, "{dot1}");
    }

    #[test]
    fn lstsq_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0, 3.0]),
            Err(NumericsError::RankDeficient { .. })
        ));
    }

    #[test]
    fn lstsq_rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lstsq(&a, &[1.0, 2.0]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]);
        assert_eq!(a.norm_inf(), 3.5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_checks_dimensions() {
        let a = Matrix::zeros(2, 2);
        let _ = a.mul_vec(&[1.0]);
    }

    #[test]
    fn display_prints_every_entry() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert_eq!(s.lines().count(), 2);
    }
}
