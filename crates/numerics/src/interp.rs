//! Interpolation of tabulated data.
//!
//! Used to resample the synthetic experimental I–V curves onto model sweep
//! grids before computing the Table V error metrics, and by the reference
//! model's optional charge-curve caching.

use crate::error::NumericsError;

/// Piecewise-linear interpolant over strictly increasing abscissae.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::interp::LinearInterpolator;
/// let li = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0])?;
/// assert_eq!(li.eval(0.5), 5.0);
/// # Ok::<(), cntfet_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Creates an interpolant from matched samples.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if fewer than two points are
    /// given, lengths differ, or `xs` is not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate_table(&xs, &ys)?;
        Ok(LinearInterpolator { xs, ys })
    }

    /// Domain of the table as `(min, max)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("validated non-empty"))
    }

    /// Evaluates the interpolant at `x`, clamping outside the domain to the
    /// end values (flat extrapolation, appropriate for saturating charge
    /// and current curves).
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = match self
            .xs
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }
}

/// Monotone (Fritsch–Carlson) piecewise-cubic Hermite interpolant.
///
/// Preserves monotonicity of the data — important when resampling measured
/// I–V curves, where a plain cubic spline can introduce spurious wiggles
/// near saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct PchipInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
    slopes: Vec<f64>,
}

impl PchipInterpolator {
    /// Creates a monotone cubic interpolant from matched samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearInterpolator::new`].
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        validate_table(&xs, &ys)?;
        let n = xs.len();
        let mut deltas = vec![0.0; n - 1];
        for i in 0..n - 1 {
            deltas[i] = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
        }
        let mut slopes = vec![0.0; n];
        slopes[0] = deltas[0];
        slopes[n - 1] = deltas[n - 2];
        for i in 1..n - 1 {
            if deltas[i - 1] * deltas[i] <= 0.0 {
                slopes[i] = 0.0;
            } else {
                // Weighted harmonic mean (Fritsch–Butland).
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                let w1 = 2.0 * h1 + h0;
                let w2 = h1 + 2.0 * h0;
                slopes[i] = (w1 + w2) / (w1 / deltas[i - 1] + w2 / deltas[i]);
            }
        }
        Ok(PchipInterpolator { xs, ys, slopes })
    }

    /// Evaluates the interpolant at `x` with flat extrapolation outside the
    /// domain.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let i = match self
            .xs
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i]
            + h10 * h * self.slopes[i]
            + h01 * self.ys[i + 1]
            + h11 * h * self.slopes[i + 1]
    }
}

fn validate_table(xs: &[f64], ys: &[f64]) -> Result<(), NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInput(format!(
            "xs and ys lengths differ ({} vs {})",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidInput(
            "interpolation requires at least two points".to_string(),
        ));
    }
    for w in xs.windows(2) {
        // partial_cmp so NaN abscissae are rejected, not let through.
        if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
            return Err(NumericsError::InvalidInput(format!(
                "abscissae must be strictly increasing ({} then {})",
                w[0], w[1]
            )));
        }
    }
    Ok(())
}

/// Returns `n` evenly spaced values covering `[a, b]` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace requires at least two points");
    (0..n)
        .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_knots_and_midpoints() {
        let li = LinearInterpolator::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        assert_eq!(li.eval(0.0), 0.0);
        assert_eq!(li.eval(1.0), 2.0);
        assert_eq!(li.eval(3.0), -2.0);
        assert_eq!(li.eval(0.5), 1.0);
        assert_eq!(li.eval(2.0), 0.0);
    }

    #[test]
    fn linear_clamps_outside_domain() {
        let li = LinearInterpolator::new(vec![0.0, 1.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(li.eval(-1.0), 5.0);
        assert_eq!(li.eval(2.0), 7.0);
        assert_eq!(li.domain(), (0.0, 1.0));
    }

    #[test]
    fn table_validation_catches_errors() {
        assert!(LinearInterpolator::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterpolator::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterpolator::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterpolator::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn pchip_reproduces_knots() {
        let xs = vec![0.0, 0.5, 1.5, 2.0];
        let ys = vec![1.0, 3.0, 3.5, 4.0];
        let p = PchipInterpolator::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((p.eval(*x) - y).abs() < 1e-14);
        }
    }

    #[test]
    fn pchip_preserves_monotonicity() {
        // Data with a sharp saturation; cubic splines would overshoot.
        let xs = vec![0.0, 0.1, 0.2, 0.3, 1.0, 2.0];
        let ys = vec![0.0, 0.8, 0.95, 0.99, 1.0, 1.0];
        let p = PchipInterpolator::new(xs, ys).unwrap();
        let mut prev = p.eval(0.0);
        for i in 1..=200 {
            let x = 2.0 * i as f64 / 200.0;
            let v = p.eval(x);
            assert!(v >= prev - 1e-12, "non-monotone at x = {x}");
            assert!(v <= 1.0 + 1e-12, "overshoot at x = {x}");
            prev = v;
        }
    }

    #[test]
    fn pchip_flat_data_stays_flat() {
        let p = PchipInterpolator::new(vec![0.0, 1.0, 2.0], vec![4.0, 4.0, 4.0]).unwrap();
        for i in 0..=20 {
            assert_eq!(p.eval(i as f64 / 10.0), 4.0);
        }
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(1.0, 2.0, 5);
        assert_eq!(v, vec![1.0, 1.25, 1.5, 1.75, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_requires_two_points() {
        let _ = linspace(0.0, 1.0, 1);
    }
}
