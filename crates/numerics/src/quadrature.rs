//! Numerical integration.
//!
//! The reference ballistic model (the paper's FETToy baseline) evaluates the
//! state-density integrals of eqs. (2)–(4) numerically; this module supplies
//! the quadrature rules it uses. The compact model deliberately avoids all
//! of this — which is exactly the speed-up the paper measures.

/// Integrates `f` over `[a, b]` with adaptive Simpson quadrature.
///
/// `tol` is an absolute error target for the whole interval; `max_depth`
/// bounds the recursion (40 is ample for the smooth Fermi-type integrands
/// used in this workspace). The orientation is signed: swapping `a` and `b`
/// negates the result.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::quadrature::adaptive_simpson;
/// let v = adaptive_simpson(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-12, 40);
/// assert!((v - 2.0).abs() < 1e-10);
/// ```
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, tol: f64, max_depth: u32) -> f64 {
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_panel(a, b, fa, fm, fb);
    simpson_recurse(f, a, b, fa, fm, fb, whole, tol, max_depth)
}

fn simpson_panel(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_panel(a, m, fa, flm, fm);
    let right = simpson_panel(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        simpson_recurse(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)
            + simpson_recurse(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)
    }
}

/// Fixed-order composite Simpson rule with `n` panels (rounded up to even).
///
/// Used by the reference model when a deterministic, fixed work budget is
/// preferable to adaptivity — e.g. in the CPU-time benchmark mirroring
/// Table I, where FETToy's fixed energy grid is the right analogue.
pub fn composite_simpson<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, n: usize) -> f64 {
    let n = if n.is_multiple_of(2) { n.max(2) } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for k in 1..n {
        let x = a + k as f64 * h;
        acc += if k % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    acc * h / 3.0
}

/// Nodes and weights of the `n`-point Gauss–Legendre rule on `[-1, 1]`.
///
/// Computed on the fly by Newton iteration on the Legendre polynomial
/// recurrence; accuracy is near machine precision for `n ≤ 64`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gauss_legendre_nodes(n: usize) -> Vec<(f64, f64)> {
    assert!(n > 0, "gauss_legendre_nodes requires n > 0");
    let mut out = Vec::with_capacity(n);
    let m = n.div_ceil(2);
    for i in 0..m {
        // Initial guess (Tricomi-style).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            let (p, dp) = legendre_with_derivative(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre_with_derivative(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        out.push((-x, w));
        if 2 * (i + 1) <= n && x.abs() > 1e-14 {
            out.push((x, w));
        } else if x.abs() <= 1e-14 {
            // Central node of odd rules: keep exactly one copy at 0.
            let last = out.last_mut().expect("just pushed");
            last.0 = 0.0;
        }
    }
    out.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("nodes are finite"));
    out
}

fn legendre_with_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0;
    let mut p1 = x;
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

/// Integrates `f` over `[a, b]` with an `n`-point Gauss–Legendre rule.
///
/// Exact for polynomials of degree ≤ `2n − 1`.
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: &F, a: f64, b: f64, n: usize) -> f64 {
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    gauss_legendre_nodes(n)
        .iter()
        .map(|&(x, w)| w * f(mid + half * x))
        .sum::<f64>()
        * half
}

/// Integrates `f` over `[a, ∞)` for integrands with (at worst) exponential
/// tails, such as `D(E) f_FD(E − μ)`.
///
/// The tail is handled by marching in fixed-width windows until a window
/// contributes less than `tol` relative to the accumulated value; each
/// window uses adaptive Simpson. `decay_scale` sets the window width and
/// should be of the order of the integrand's decay length (`kT` for Fermi
/// tails).
pub fn integrate_semi_infinite<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    decay_scale: f64,
    tol: f64,
) -> f64 {
    let w = decay_scale.abs().max(1e-12) * 10.0;
    let mut total = 0.0;
    let mut lo = a;
    for _ in 0..200 {
        let hi = lo + w;
        let part = adaptive_simpson(f, lo, hi, tol.max(1e-16), 30);
        total += part;
        if part.abs() <= tol * (1.0 + total.abs()) {
            break;
        }
        lo = hi;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simpson_integrates_polynomial_exactly_enough() {
        let v = adaptive_simpson(&|x: f64| x * x * x - 2.0 * x + 1.0, -1.0, 2.0, 1e-13, 40);
        // ∫ = x⁴/4 - x² + x  →  (4-4+2) - (1/4-1-1) = 2 + 1.75 = 3.75
        assert!((v - 3.75).abs() < 1e-11, "{v}");
    }

    #[test]
    fn simpson_empty_interval_is_zero() {
        assert_eq!(
            adaptive_simpson(&|x: f64| x.exp(), 1.0, 1.0, 1e-10, 10),
            0.0
        );
    }

    #[test]
    fn simpson_orientation_is_signed() {
        let fwd = adaptive_simpson(&|x: f64| x.exp(), 0.0, 1.0, 1e-12, 40);
        let bwd = adaptive_simpson(&|x: f64| x.exp(), 1.0, 0.0, 1e-12, 40);
        assert!((fwd + bwd).abs() < 1e-12);
        assert!((fwd - (std::f64::consts::E - 1.0)).abs() < 1e-10);
    }

    #[test]
    fn simpson_handles_sharp_fermi_step() {
        // Fermi function with kT = 0.0259/40 ≈ sharp step at 0.3.
        let kt = 0.00065;
        let f = |x: f64| 1.0 / (1.0 + ((x - 0.3) / kt).exp());
        let v = adaptive_simpson(&f, 0.0, 1.0, 1e-12, 48);
        assert!((v - 0.3).abs() < 1e-6, "{v}");
    }

    #[test]
    fn composite_simpson_matches_adaptive_on_smooth_function() {
        let f = |x: f64| (x * 1.3).cos();
        let a = composite_simpson(&f, 0.0, 2.0, 400);
        let b = adaptive_simpson(&f, 0.0, 2.0, 1e-13, 40);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn composite_simpson_rounds_odd_panel_counts_up() {
        let f = |x: f64| x * x;
        let v = composite_simpson(&f, 0.0, 1.0, 3);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_nodes_are_symmetric_and_weights_sum_to_two() {
        for n in [1, 2, 3, 4, 5, 8, 16, 33] {
            let nodes = gauss_legendre_nodes(n);
            assert_eq!(nodes.len(), n, "n = {n}");
            let wsum: f64 = nodes.iter().map(|&(_, w)| w).sum();
            assert!((wsum - 2.0).abs() < 1e-12, "n = {n}, wsum = {wsum}");
            for &(x, _) in &nodes {
                assert!(nodes.iter().any(|&(y, _)| (y + x).abs() < 1e-12), "n = {n}");
            }
        }
    }

    #[test]
    fn gauss_legendre_is_exact_for_high_degree_polynomials() {
        // 5-point rule is exact through degree 9.
        let f = |x: f64| x.powi(9) + 3.0 * x.powi(6) - x;
        let got = gauss_legendre(&f, -1.0, 1.0, 5);
        let want = 2.0 * 3.0 / 7.0; // odd terms vanish on [-1,1]
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn gauss_legendre_on_shifted_interval() {
        let got = gauss_legendre(&|x: f64| x * x, 1.0, 4.0, 8);
        assert!((got - 21.0).abs() < 1e-10);
    }

    #[test]
    fn semi_infinite_exponential_tail() {
        let got = integrate_semi_infinite(&|x: f64| (-x).exp(), 0.0, 1.0, 1e-12);
        assert!((got - 1.0).abs() < 1e-9, "{got}");
    }

    #[test]
    fn semi_infinite_fermi_integrand() {
        // ∫_0^∞ 1/(1+e^{(x−μ)/kT}) dx = kT ln(1+e^{μ/kT}) (F0 closed form).
        let kt = 0.0259;
        let mu = 0.2;
        let f = |x: f64| 1.0 / (1.0 + ((x - mu) / kt).exp());
        let got = integrate_semi_infinite(&f, 0.0, kt, 1e-13);
        let want = kt * (1.0 + (mu / kt).exp()).ln();
        assert!((got - want).abs() < 1e-9 * want, "{got} vs {want}");
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn gauss_legendre_zero_points_panics() {
        let _ = gauss_legendre_nodes(0);
    }
}
