//! Sparse linear algebra for MNA-style systems.
//!
//! The circuit simulator assembles the same Jacobian structure thousands
//! of times (once per Newton trial point, per sweep point, per transient
//! step). This module exploits that repetition at two levels:
//!
//! * **Assembly** — [`PatternAssembler`] records the sparsity pattern on
//!   the first assembly (triplet pushes) and compiles it into a CSR
//!   matrix with a shared [`SparsityPattern`]; every later assembly
//!   writes values straight into the preallocated slots with no
//!   allocation and no sorting.
//! * **Factorisation** — the [`LinearSolver`] trait has two
//!   implementations: [`DenseLuSolver`], the existing dense
//!   partial-pivoting LU as a fallback, and [`SparseLuSolver`], a sparse
//!   LU whose pivot order and fill-in pattern are chosen once
//!   (Markowitz-style threshold pivoting) and then **reused across
//!   factorizations** — subsequent factors replay the elimination over
//!   the frozen pattern with a dense scatter workspace, KLU-style.
//!
//! Both solvers count the multiply–accumulate/divide operations of their
//! most recent factorisation ([`LinearSolver::factor_ops`]), so the
//! sparse-vs-dense win is measurable, not just assumed.
//!
//! # Pattern-freeze and replay invariants
//!
//! The fast paths of this module rely on three invariants; violating
//! them is a bug in the *caller*, and the module fails loudly rather
//! than silently degrading:
//!
//! 1. **The recorded pattern is a superset of every later assembly.**
//!    After [`PatternAssembler::finish`] compiles the pattern, an
//!    [`PatternAssembler::add`] to an entry outside it panics — the
//!    assembled structure changed without
//!    [`PatternAssembler::invalidate`]. Callers must therefore record
//!    every entry that can *ever* be structurally nonzero, pushing an
//!    explicit `0.0` for entries whose value happens to vanish at the
//!    recording point (e.g. a gmin diagonal recorded at gmin = 0, or a
//!    companion-model conductance before the step size is known).
//! 2. **The elimination plan is keyed on the pattern, not the values.**
//!    [`SparseLuSolver::factor`] replays its frozen pivot order and
//!    fill-in pattern whenever the incoming matrix shares the recorded
//!    [`SparsityPattern`] (pointer-equal `Arc` or structurally equal
//!    contents). Any *value* change — new Newton iterate, new sweep
//!    point, new transient step size — takes the replay path: no pivot
//!    search, no fill discovery, no allocation.
//! 3. **Replay self-checks its pivots.** A frozen pivot whose magnitude
//!    collapses below `REPIVOT_RATIO` (10⁻¹²) of its row's U-part
//!    maximum — or becomes zero or non-finite — aborts the replay, and
//!    `factor` transparently redoes the full Markowitz-threshold
//!    pivoting factorisation and freezes the new plan. Callers never
//!    see this as an error unless the matrix is genuinely singular; the
//!    [`SparseLuSolver::symbolic_factor_count`] /
//!    [`SparseLuSolver::refactor_count`] counters make the fallback
//!    observable in benchmarks.

use crate::complex::Complex;
use crate::error::NumericsError;
use crate::linalg::Matrix;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::sync::Arc;

/// The symbolic (structure-only) part of a CSR matrix: row pointers and
/// sorted column indices, shareable between matrices via [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The sorted column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Storage slot of entry (`r`, `c`), or `None` when the entry is not
    /// part of the pattern.
    pub fn slot(&self, r: usize, c: usize) -> Option<usize> {
        let base = self.row_ptr[r];
        self.row_cols(r).binary_search(&c).ok().map(|i| base + i)
    }

    /// The storage-slot range of row `r`: `row_cols(r)[k]` lives in slot
    /// `row_range(r).start + k` of the value array.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }
}

/// Coordinate-format accumulator used while a sparsity pattern is still
/// being discovered. Duplicate pushes to the same entry are summed when
/// the triplets are compiled to CSR.
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty accumulator of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        TripletMatrix {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of raw (pre-merge) triplets pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all triplets, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Adds `v` at (`r`, `c`). A value of `0.0` still records the entry
    /// as structurally nonzero — assemblers rely on this to reserve
    /// slots whose value happens to vanish at the recording point.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        self.entries.push((r, c, v));
    }

    /// Compiles the triplets into a CSR matrix, merging duplicates by
    /// summation (in push order, so the result is bitwise identical to
    /// dense `+=` assembly).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (self.entries[i].0, self.entries[i].1));
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut last: Option<(usize, usize)> = None;
        for &i in &order {
            let (r, c, v) = self.entries[i];
            if last == Some((r, c)) {
                *values.last_mut().expect("merged entry exists") += v;
            } else {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for r in 0..self.n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            pattern: Arc::new(SparsityPattern {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
                row_ptr,
                col_idx,
            }),
            values,
        }
    }
}

/// A compressed-sparse-row matrix whose [`SparsityPattern`] is shared
/// (and comparable by pointer) so solvers can cache symbolic work per
/// pattern.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    pattern: Arc<SparsityPattern>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pattern.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pattern.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// The shared symbolic pattern.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// The stored values, in pattern slot order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sets every stored value to zero, keeping the pattern.
    pub fn set_zero(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `v` to entry (`r`, `c`). Returns `false` (and changes
    /// nothing) when the entry is outside the pattern.
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) -> bool {
        match self.pattern.slot(r, c) {
            Some(i) => {
                self.values[i] += v;
                true
            }
            None => false,
        }
    }

    /// Value at (`r`, `c`) — zero for entries outside the pattern.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.pattern.slot(r, c).map_or(0.0, |i| self.values[i])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols(), "dimension mismatch");
        let mut y = vec![0.0; self.rows()];
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.pattern.row_ptr[r];
            let hi = self.pattern.row_ptr[r + 1];
            *yr = (lo..hi)
                .map(|i| self.values[i] * x[self.pattern.col_idx[i]])
                .sum();
        }
        y
    }

    /// Expands to a dense [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics for a zero-dimension matrix (dense [`Matrix`] requires
    /// positive dimensions).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        self.scatter_into(&mut m);
        m
    }

    /// Writes this matrix into `dense` (which must already have the right
    /// shape), zeroing everything else.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn scatter_into(&self, dense: &mut Matrix) {
        assert!(
            dense.rows() == self.rows() && dense.cols() == self.cols(),
            "dimension mismatch"
        );
        dense.fill(0.0);
        for r in 0..self.rows() {
            let lo = self.pattern.row_ptr[r];
            let hi = self.pattern.row_ptr[r + 1];
            for i in lo..hi {
                dense[(r, self.pattern.col_idx[i])] = self.values[i];
            }
        }
    }
}

/// Result of a [`structural_rank`] computation: the size of a maximum
/// row–column matching plus the rows and columns left unmatched.
///
/// A square matrix is **structurally nonsingular** — some choice of
/// values on its nonzero entries makes it invertible — exactly when the
/// matching is perfect ([`StructuralRank::is_full`]). A structurally
/// singular matrix is numerically singular for *every* assignment of
/// values, so the unmatched columns pinpoint unknowns that no equation
/// can determine (and the unmatched rows, equations that constrain
/// nothing) before any factorisation is attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralRank {
    /// Size of the maximum bipartite matching between rows and columns.
    pub rank: usize,
    /// Rows not covered by the matching, ascending.
    pub unmatched_rows: Vec<usize>,
    /// Columns not covered by the matching, ascending.
    pub unmatched_cols: Vec<usize>,
}

impl StructuralRank {
    /// `true` when every row and every column is matched (for a square
    /// matrix: `rank == n`, i.e. structurally nonsingular).
    pub fn is_full(&self) -> bool {
        self.unmatched_rows.is_empty() && self.unmatched_cols.is_empty()
    }
}

/// Structural rank of a sparse matrix via maximum bipartite matching
/// (Kuhn's augmenting-path algorithm) on its *nonzero* entries.
///
/// Entries whose stored value is exactly `0.0` are ignored: assemblers
/// reserve slots for entries that can *become* nonzero later (a gmin
/// diagonal recorded at gmin = 0, a companion-model conductance before
/// the step size is known), and such placeholders are not structural
/// entries of the assembled operator. Callers who want the rank of the
/// pattern itself should therefore assemble with representative values.
///
/// The maximum matching is the entry point to the Dulmage–Mendelsohn
/// coarse decomposition (the roadmap's BTF ordering work); here it is
/// used to diagnose structurally singular MNA systems with the exact
/// unmatched unknowns.
pub fn structural_rank(m: &CsrMatrix) -> StructuralRank {
    let pattern = m.pattern();
    let values = m.values();
    let n_rows = pattern.rows();
    let n_cols = pattern.cols();

    // row_for_col[c] = row currently matched to column c (usize::MAX =
    // unmatched). `seen` carries a per-phase stamp so it is never
    // cleared between augmenting phases.
    let mut row_for_col = vec![usize::MAX; n_cols];
    let mut seen = vec![0usize; n_cols];

    fn augment(
        r: usize,
        pattern: &SparsityPattern,
        values: &[f64],
        stamp: usize,
        seen: &mut [usize],
        row_for_col: &mut [usize],
    ) -> bool {
        let slots = pattern.row_range(r);
        for (k, &c) in pattern.row_cols(r).iter().enumerate() {
            if values[slots.start + k] == 0.0 || seen[c] == stamp {
                continue;
            }
            seen[c] = stamp;
            let owner = row_for_col[c];
            if owner == usize::MAX || augment(owner, pattern, values, stamp, seen, row_for_col) {
                row_for_col[c] = r;
                return true;
            }
        }
        false
    }

    let mut rank = 0;
    for r in 0..n_rows {
        // Stamps start at 1 so the zero-initialised `seen` is "unseen".
        if augment(r, pattern, values, r + 1, &mut seen, &mut row_for_col) {
            rank += 1;
        }
    }

    let mut row_matched = vec![false; n_rows];
    for &r in row_for_col.iter().filter(|&&r| r != usize::MAX) {
        row_matched[r] = true;
    }
    StructuralRank {
        rank,
        unmatched_rows: (0..n_rows).filter(|&r| !row_matched[r]).collect(),
        unmatched_cols: (0..n_cols)
            .filter(|&c| row_for_col[c] == usize::MAX)
            .collect(),
    }
}

/// Pattern-caching assembly target.
///
/// The first assembly cycle (`begin` → `add`s → `finish`) records
/// triplets and compiles the sparsity pattern; every later cycle zeroes
/// the stored values and routes each `add` to its preallocated slot —
/// no allocation, no sorting, no hashing. Call [`invalidate`] when the
/// assembled structure changes (e.g. a circuit gained elements) to force
/// a re-recording.
///
/// [`invalidate`]: PatternAssembler::invalidate
#[derive(Debug)]
pub struct PatternAssembler {
    state: AsmState,
    pattern_builds: usize,
}

#[derive(Debug)]
enum AsmState {
    Recording(TripletMatrix),
    Ready(CsrMatrix),
}

impl PatternAssembler {
    /// Creates an assembler for matrices of the given shape, starting in
    /// recording mode.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        PatternAssembler {
            state: AsmState::Recording(TripletMatrix::new(n_rows, n_cols)),
            pattern_builds: 0,
        }
    }

    /// `true` while the sparsity pattern is still being recorded.
    pub fn is_recording(&self) -> bool {
        matches!(self.state, AsmState::Recording(_))
    }

    /// How many times a pattern has been compiled (diagnostics; lets
    /// callers assert that structure changes rebuild the cache).
    pub fn pattern_builds(&self) -> usize {
        self.pattern_builds
    }

    /// Starts a new assembly cycle: clears triplets (recording mode) or
    /// zeroes the cached values (pattern mode).
    pub fn begin(&mut self) {
        match &mut self.state {
            AsmState::Recording(t) => t.clear(),
            AsmState::Ready(m) => m.set_zero(),
        }
    }

    /// Adds `v` at (`r`, `c`). Zero values still reserve a slot while
    /// recording.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds, or if the entry is
    /// missing from a cached pattern — that means the assembled
    /// structure changed without [`PatternAssembler::invalidate`].
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        match &mut self.state {
            AsmState::Recording(t) => t.push(r, c, v),
            AsmState::Ready(m) => {
                assert!(
                    m.add_at(r, c, v),
                    "entry ({r}, {c}) is not in the cached sparsity pattern; \
                     call invalidate() after structural changes"
                );
            }
        }
    }

    /// Finishes the cycle and returns the assembled matrix, compiling
    /// the pattern on the first call.
    pub fn finish(&mut self) -> &CsrMatrix {
        if let AsmState::Recording(t) = &self.state {
            self.state = AsmState::Ready(t.to_csr());
            self.pattern_builds += 1;
        }
        match &self.state {
            AsmState::Ready(m) => m,
            AsmState::Recording(_) => unreachable!("compiled above"),
        }
    }

    /// The assembled matrix of the last finished cycle, if any.
    pub fn matrix(&self) -> Option<&CsrMatrix> {
        match &self.state {
            AsmState::Ready(m) => Some(m),
            AsmState::Recording(_) => None,
        }
    }

    /// Discards the cached pattern and returns to recording mode.
    pub fn invalidate(&mut self) {
        let (r, c) = match &self.state {
            AsmState::Recording(t) => (t.rows(), t.cols()),
            AsmState::Ready(m) => (m.rows(), m.cols()),
        };
        self.state = AsmState::Recording(TripletMatrix::new(r, c));
    }
}

/// A direct solver for square sparse systems `A x = b`.
///
/// `factor` may cache symbolic work keyed on the matrix's shared
/// [`SparsityPattern`]; `solve_factored` reuses the latest factors for
/// any number of right-hand sides.
pub trait LinearSolver: std::fmt::Debug {
    /// Short human-readable solver name (for benchmark tables).
    fn name(&self) -> &'static str;

    /// Factors `a`, replacing any previously stored factors. A failed
    /// factorisation discards the previous factors as well (they may
    /// have been partially overwritten), so `solve_factored` errors
    /// rather than mixing stale and new data.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for (numerically)
    /// singular input and [`NumericsError::InvalidInput`] for non-square
    /// input.
    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError>;

    /// Solves `A x = b` with the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when there are no valid
    /// factors (never factored, or the last factor failed) or `b` has
    /// the wrong length.
    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError>;

    /// Factors `a` and solves in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`LinearSolver::factor`] and
    /// [`LinearSolver::solve_factored`].
    fn solve(&mut self, a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.factor(a)?;
        self.solve_factored(b)
    }

    /// Multiply–accumulate + divide count of the most recent
    /// factorisation.
    fn factor_ops(&self) -> u64;
}

/// Exact operation count (divisions + multiply–subtracts) of the dense
/// partial-pivoting LU in [`Matrix::lu`] for an `n × n` matrix.
pub fn dense_lu_ops(n: usize) -> u64 {
    (0..n)
        .map(|k| {
            let below = (n - k - 1) as u64;
            below + below * below
        })
        .sum()
}

/// The dense fallback: scatters the sparse matrix into a reused dense
/// buffer and runs the existing partial-pivoting LU.
#[derive(Debug, Default)]
pub struct DenseLuSolver {
    buffer: Option<Matrix>,
    factors: Option<crate::linalg::LuDecomposition>,
    ops: u64,
}

impl DenseLuSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LinearSolver for DenseLuSolver {
    fn name(&self) -> &'static str {
        "dense-lu"
    }

    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError> {
        let n = a.rows();
        if n != a.cols() {
            return Err(NumericsError::InvalidInput(format!(
                "factor requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let reuse = self.buffer.as_ref().is_some_and(|m| m.rows() == n);
        if !reuse {
            self.buffer = Some(Matrix::zeros(n, n));
        }
        let dense = self.buffer.as_mut().expect("buffer allocated above");
        a.scatter_into(dense);
        match dense.lu() {
            Ok(f) => {
                self.factors = Some(f);
                self.ops = dense_lu_ops(n);
                Ok(())
            }
            Err(e) => {
                self.factors = None;
                Err(e)
            }
        }
    }

    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let f = self.factors.as_ref().ok_or_else(|| {
            NumericsError::InvalidInput("solve_factored called before factor".into())
        })?;
        let n = self.buffer.as_ref().map_or(0, Matrix::rows);
        if b.len() != n {
            return Err(NumericsError::InvalidInput(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        Ok(f.solve(b))
    }

    fn factor_ops(&self) -> u64 {
        self.ops
    }
}

/// Scalar types the sparse LU elimination is generic over.
///
/// The factorisation algorithm only needs field arithmetic plus a real
/// magnitude for pivot decisions, so one implementation serves both the
/// real Newton Jacobians (`f64`, via [`SparseLuSolver`]) and the complex
/// AC small-signal systems `G + jωC` ([`Complex`], via [`SparseLu`]).
pub trait LuScalar:
    Copy
    + std::fmt::Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;

    /// Magnitude used for pivot eligibility and collapse detection.
    fn modulus(self) -> f64;

    /// `true` when the value has no NaN or infinite component.
    fn is_finite(self) -> bool;
}

impl LuScalar for f64 {
    const ZERO: Self = 0.0;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl LuScalar for Complex {
    const ZERO: Self = Complex::ZERO;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite(self) -> bool {
        Complex::is_finite(self)
    }
}

/// Scalar-generic sparse LU with a cached elimination plan, operating on
/// a shared [`SparsityPattern`] plus a value slice in pattern slot
/// order.
///
/// The first factorisation of a pattern runs a full right-looking
/// elimination with Markowitz-style threshold pivoting (prefer short
/// rows among candidates whose pivot magnitude is within
/// `PIVOT_THRESHOLD` of the column maximum) and records the pivot order
/// plus the complete fill-in pattern. Later factorisations of the *same*
/// pattern replay the elimination over the frozen structure with a dense
/// scatter workspace — no pivot search, no pattern discovery, no
/// allocation. If a frozen pivot collapses numerically the solver
/// transparently redoes the pivoting factorisation.
///
/// For real systems assembled as [`CsrMatrix`], use the
/// [`SparseLuSolver`] wrapper (which implements [`LinearSolver`]); use
/// this type directly for complex-valued systems such as AC sweeps,
/// where one frozen pattern is re-valued per frequency point:
///
/// ```
/// use cntfet_numerics::complex::Complex;
/// use cntfet_numerics::sparse::{SparseLu, TripletMatrix};
/// use std::sync::Arc;
///
/// // Pattern from a real assembly; values re-valued per frequency.
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 1, 1.0);
/// let pattern = Arc::clone(t.to_csr().pattern());
/// let mut lu = SparseLu::<Complex>::new();
/// for omega in [1.0, 10.0, 100.0] {
///     let vals = vec![Complex::new(1.0, omega), Complex::new(2.0, omega)];
///     lu.factor(&pattern, &vals).unwrap();
///     let x = lu.solve_factored(&[Complex::ONE, Complex::ONE]).unwrap();
///     assert!((x[0] - Complex::ONE / Complex::new(1.0, omega)).abs() < 1e-15);
/// }
/// assert_eq!(lu.symbolic_factor_count(), 1); // ordered once,
/// assert_eq!(lu.refactor_count(), 2); // re-valued afterwards
/// ```
#[derive(Debug)]
pub struct SparseLu<T> {
    symbolic: Option<Symbolic>,
    f_values: Vec<T>,
    diag: Vec<T>,
    work: Vec<T>,
    ops: u64,
    symbolic_factors: u64,
    refactors: u64,
}

impl<T> Default for SparseLu<T> {
    fn default() -> Self {
        SparseLu {
            symbolic: None,
            f_values: Vec::new(),
            diag: Vec::new(),
            work: Vec::new(),
            ops: 0,
            symbolic_factors: 0,
            refactors: 0,
        }
    }
}

#[derive(Debug)]
struct Symbolic {
    pattern: Arc<SparsityPattern>,
    /// `perm[k]` = original row index used as the pivot of step `k`.
    perm: Vec<usize>,
    /// `col_order[k]` = original column eliminated at step `k` (static
    /// fill-reducing pre-ordering: ascending initial column degree, so
    /// high-fanout columns like a supply rail go last).
    col_order: Vec<usize>,
    /// Factor storage structure, per original row: full fill-in
    /// pattern. Column indices are *virtual* (elimination-order) —
    /// `col_order` maps them back.
    f_row_ptr: Vec<usize>,
    f_col_idx: Vec<usize>,
    /// First slot of row `r`'s U part (its pivot column `pos[r]`).
    u_start: Vec<usize>,
    /// Slot of the pivot entry (`perm[k]`, `k`) per step.
    diag_slot: Vec<usize>,
    /// Maps each slot of the A pattern to its slot in factor storage.
    a_to_f: Vec<usize>,
}

/// Relative magnitude a candidate pivot must reach (vs the column
/// maximum) to be eligible for the Markowitz tie-break.
const PIVOT_THRESHOLD: f64 = 1e-3;

/// A frozen pivot smaller than this fraction of its row's U-part maximum
/// triggers a fresh pivoting factorisation.
const REPIVOT_RATIO: f64 = 1e-12;

impl<T: LuScalar> SparseLu<T> {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of full (pivot-searching) factorisations performed.
    pub fn symbolic_factor_count(&self) -> u64 {
        self.symbolic_factors
    }

    /// Number of fast pattern-replay factorisations performed.
    pub fn refactor_count(&self) -> u64 {
        self.refactors
    }

    /// Multiply–accumulate + divide count of the most recent
    /// factorisation.
    pub fn factor_ops(&self) -> u64 {
        self.ops
    }

    /// Number of stored L+U entries of the current elimination plan
    /// (0 before the first factorisation).
    pub fn factor_nnz(&self) -> usize {
        self.symbolic.as_ref().map_or(0, |s| s.f_col_idx.len())
    }

    /// Factors the matrix given by `pattern` plus `values` (in pattern
    /// slot order), replacing any previously stored factors. The same
    /// pattern as the last call takes the fast elimination-replay path;
    /// a failed factorisation discards the previous factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for (numerically)
    /// singular input and [`NumericsError::InvalidInput`] for non-square
    /// input or a value slice that does not match the pattern.
    pub fn factor(
        &mut self,
        pattern: &Arc<SparsityPattern>,
        values: &[T],
    ) -> Result<(), NumericsError> {
        if pattern.rows() != pattern.cols() {
            return Err(NumericsError::InvalidInput(format!(
                "factor requires a square matrix, got {}x{}",
                pattern.rows(),
                pattern.cols()
            )));
        }
        if values.len() != pattern.nnz() {
            return Err(NumericsError::InvalidInput(format!(
                "value slice length {} does not match pattern nnz {}",
                values.len(),
                pattern.nnz()
            )));
        }
        let same_pattern = self
            .symbolic
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(&s.pattern, pattern) || *s.pattern == **pattern);
        if same_pattern {
            match self.refactor(values) {
                Ok(()) => return Ok(()),
                // A frozen pivot collapsed; fall through and re-pivot.
                Err(NumericsError::SingularMatrix { .. }) => {}
                Err(e) => {
                    self.symbolic = None;
                    return Err(e);
                }
            }
        }
        let result = self.factor_with_pivoting(pattern, values);
        if result.is_err() {
            // A failed refactor has already overwritten parts of the
            // factor storage; never let solve_factored read that
            // half-updated state as if it were the previous factors.
            self.symbolic = None;
        }
        result
    }

    /// Full factorisation with pivot search; records the elimination
    /// plan for later replays.
    fn factor_with_pivoting(
        &mut self,
        pattern: &Arc<SparsityPattern>,
        values: &[T],
    ) -> Result<(), NumericsError> {
        let n = pattern.rows();
        // Static fill-reducing column ordering: eliminate low-degree
        // columns first. Dense columns (e.g. a supply rail touching
        // every gate) would otherwise be eliminated early and couple
        // every row they reach, exploding fill.
        let mut col_degree = vec![0usize; n];
        for &c in &pattern.col_idx {
            col_degree[c] += 1;
        }
        let mut col_order: Vec<usize> = (0..n).collect();
        col_order.sort_by_key(|&c| (col_degree[c], c));
        let mut col_rank = vec![0usize; n];
        for (k, &c) in col_order.iter().enumerate() {
            col_rank[c] = k;
        }
        // Working rows as (virtual column, value) vectors sorted by
        // virtual (elimination-order) column.
        let mut rows: Vec<Vec<(usize, T)>> = (0..n)
            .map(|r| {
                let lo = pattern.row_ptr[r];
                let hi = pattern.row_ptr[r + 1];
                let mut row: Vec<(usize, T)> = (lo..hi)
                    .map(|i| (col_rank[pattern.col_idx[i]], values[i]))
                    .collect();
                row.sort_by_key(|e| e.0);
                row
            })
            .collect();
        // Rows holding a structural entry in each column; fill creation
        // appends, so each (row, column) pair appears at most once.
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, row) in rows.iter().enumerate() {
            for &(c, _) in row {
                col_rows[c].push(r);
            }
        }
        let mut pivoted = vec![false; n];
        let mut perm = Vec::with_capacity(n);
        let mut ops: u64 = 0;
        for k in 0..n {
            // Candidate scan: largest magnitude in column k.
            let mut maxabs = 0.0f64;
            for &r in &col_rows[k] {
                if pivoted[r] {
                    continue;
                }
                let i = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                maxabs = maxabs.max(rows[r][i].1.modulus());
            }
            if maxabs == 0.0 || !maxabs.is_finite() {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            // Markowitz-style: among magnitude-eligible rows take the
            // shortest (least prospective fill), break ties by magnitude.
            let mut best: Option<(usize, usize, f64)> = None;
            for &r in &col_rows[k] {
                if pivoted[r] {
                    continue;
                }
                let i = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                let mag = rows[r][i].1.modulus();
                if mag >= PIVOT_THRESHOLD * maxabs {
                    let len = rows[r].len();
                    let better = best
                        .is_none_or(|(_, blen, bmag)| len < blen || (len == blen && mag > bmag));
                    if better {
                        best = Some((r, len, mag));
                    }
                }
            }
            let (prow, _, _) = best.expect("maxabs > 0 guarantees an eligible row");
            pivoted[prow] = true;
            perm.push(prow);
            let pstart = rows[prow]
                .binary_search_by_key(&k, |e| e.0)
                .expect("pivot entry");
            let pivot_val = rows[prow][pstart].1;
            // Clone the pivot row's U tail once per step (merge source).
            let utail: Vec<(usize, T)> = rows[prow][pstart + 1..].to_vec();
            let candidates: Vec<usize> = col_rows[k]
                .iter()
                .copied()
                .filter(|&r| !pivoted[r])
                .collect();
            for r in candidates {
                let ei = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                let m = rows[r][ei].1 / pivot_val;
                rows[r][ei].1 = m; // becomes the stored L multiplier
                ops += 1;
                // rows[r][ei+1..] -= m * utail  (sorted two-way merge;
                // performed even for m == 0 so the recorded pattern stays
                // valid for any values with this structure).
                let old_tail: Vec<(usize, T)> = rows[r].split_off(ei + 1);
                let mut oi = 0;
                let mut ui = 0;
                while oi < old_tail.len() || ui < utail.len() {
                    let take_old =
                        ui >= utail.len() || (oi < old_tail.len() && old_tail[oi].0 < utail[ui].0);
                    let take_both =
                        oi < old_tail.len() && ui < utail.len() && old_tail[oi].0 == utail[ui].0;
                    if take_both {
                        rows[r].push((old_tail[oi].0, old_tail[oi].1 - m * utail[ui].1));
                        oi += 1;
                        ui += 1;
                    } else if take_old {
                        rows[r].push(old_tail[oi]);
                        oi += 1;
                    } else {
                        // Fill-in: new structural entry.
                        rows[r].push((utail[ui].0, -m * utail[ui].1));
                        col_rows[utail[ui].0].push(r);
                        ui += 1;
                    }
                }
                ops += utail.len() as u64;
            }
        }
        // Compile factor storage from the fully eliminated rows.
        let mut pos = vec![0usize; n];
        for (k, &r) in perm.iter().enumerate() {
            pos[r] = k;
        }
        let mut f_row_ptr = Vec::with_capacity(n + 1);
        let mut f_col_idx = Vec::new();
        let mut f_values = Vec::new();
        let mut u_start = vec![0usize; n];
        f_row_ptr.push(0);
        for (r, row) in rows.iter().enumerate() {
            let local_u = row
                .binary_search_by_key(&pos[r], |e| e.0)
                .expect("pivot entry survives elimination");
            u_start[r] = f_col_idx.len() + local_u;
            for &(c, v) in row {
                f_col_idx.push(c);
                f_values.push(v);
            }
            f_row_ptr.push(f_col_idx.len());
        }
        let diag_slot: Vec<usize> = (0..n).map(|k| u_start[perm[k]]).collect();
        let diag: Vec<T> = diag_slot.iter().map(|&s| f_values[s]).collect();
        // Map every slot of A into factor storage (A ⊆ fill pattern).
        let mut a_to_f = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            let flo = f_row_ptr[r];
            let fhi = f_row_ptr[r + 1];
            for &c in pattern.row_cols(r) {
                let i = f_col_idx[flo..fhi]
                    .binary_search(&col_rank[c])
                    .expect("A entry is part of the fill pattern");
                a_to_f.push(flo + i);
            }
        }
        self.symbolic = Some(Symbolic {
            pattern: Arc::clone(pattern),
            perm,
            col_order,
            f_row_ptr,
            f_col_idx,
            u_start,
            diag_slot,
            a_to_f,
        });
        self.f_values = f_values;
        self.diag = diag;
        self.work = vec![T::ZERO; n];
        self.ops = ops;
        self.symbolic_factors += 1;
        Ok(())
    }

    /// Replays the recorded elimination over new values. Returns
    /// `Err(SingularMatrix)` when a frozen pivot collapses — the caller
    /// falls back to a fresh pivoting factorisation.
    fn refactor(&mut self, values: &[T]) -> Result<(), NumericsError> {
        let s = self.symbolic.as_ref().expect("refactor requires symbolic");
        let n = s.perm.len();
        self.f_values.iter_mut().for_each(|v| *v = T::ZERO);
        for (slot, &v) in values.iter().enumerate() {
            self.f_values[s.a_to_f[slot]] += v;
        }
        let mut ops: u64 = 0;
        for k in 0..n {
            let r = s.perm[k];
            let lo = s.f_row_ptr[r];
            let hi = s.f_row_ptr[r + 1];
            // Scatter the row into the dense workspace.
            for i in lo..hi {
                self.work[s.f_col_idx[i]] = self.f_values[i];
            }
            // Eliminate the L part in ascending column (= step) order.
            for i in lo..s.u_start[r] {
                let c = s.f_col_idx[i];
                let m = self.work[c] / self.diag[c];
                self.work[c] = m;
                ops += 1;
                let pr = s.perm[c];
                let ud = s.diag_slot[c];
                let pend = s.f_row_ptr[pr + 1];
                for ui in (ud + 1)..pend {
                    self.work[s.f_col_idx[ui]] -= m * self.f_values[ui];
                }
                ops += (pend - ud - 1) as u64;
            }
            let pivot = self.work[k];
            let mut umax = 0.0f64;
            for i in s.u_start[r]..hi {
                umax = umax.max(self.work[s.f_col_idx[i]].modulus());
            }
            // Gather back and clear the workspace.
            for i in lo..hi {
                let c = s.f_col_idx[i];
                self.f_values[i] = self.work[c];
                self.work[c] = T::ZERO;
            }
            if !pivot.is_finite() || pivot.modulus() < REPIVOT_RATIO * umax || pivot == T::ZERO {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            self.diag[k] = pivot;
        }
        self.ops = ops;
        self.refactors += 1;
        Ok(())
    }

    /// Solves `A x = b` with the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when there are no valid
    /// factors (never factored, or the last factor failed) or `b` has
    /// the wrong length.
    pub fn solve_factored(&self, b: &[T]) -> Result<Vec<T>, NumericsError> {
        let s = self.symbolic.as_ref().ok_or_else(|| {
            NumericsError::InvalidInput("solve_factored called before factor".into())
        })?;
        let n = s.perm.len();
        if b.len() != n {
            return Err(NumericsError::InvalidInput(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        // Forward: L y = P b, in pivot order (L columns are steps).
        let mut y = vec![T::ZERO; n];
        for (k, &r) in s.perm.iter().enumerate() {
            let mut acc = b[r];
            for i in s.f_row_ptr[r]..s.u_start[r] {
                acc -= self.f_values[i] * y[s.f_col_idx[i]];
            }
            y[k] = acc;
        }
        // Backward: U xv = y in virtual column space.
        let mut xv = vec![T::ZERO; n];
        for k in (0..n).rev() {
            let r = s.perm[k];
            let mut acc = y[k];
            for i in (s.diag_slot[k] + 1)..s.f_row_ptr[r + 1] {
                acc -= self.f_values[i] * xv[s.f_col_idx[i]];
            }
            xv[k] = acc / self.diag[k];
        }
        // Undo the static column ordering.
        let mut x = vec![T::ZERO; n];
        for (k, &c) in s.col_order.iter().enumerate() {
            x[c] = xv[k];
        }
        Ok(x)
    }
}

/// The real-valued sparse LU behind the circuit engine's sparse Newton
/// solves: a thin [`LinearSolver`] adapter over [`SparseLu<f64>`] that
/// factors assembled [`CsrMatrix`] Jacobians. See [`SparseLu`] for the
/// elimination-plan caching semantics.
#[derive(Debug, Default)]
pub struct SparseLuSolver {
    core: SparseLu<f64>,
}

impl SparseLuSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of full (pivot-searching) factorisations performed.
    pub fn symbolic_factor_count(&self) -> u64 {
        self.core.symbolic_factor_count()
    }

    /// Number of fast pattern-replay factorisations performed.
    pub fn refactor_count(&self) -> u64 {
        self.core.refactor_count()
    }

    /// Number of stored L+U entries of the current elimination plan
    /// (0 before the first factorisation).
    pub fn factor_nnz(&self) -> usize {
        self.core.factor_nnz()
    }
}

impl LinearSolver for SparseLuSolver {
    fn name(&self) -> &'static str {
        "sparse-lu"
    }

    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError> {
        self.core.factor(a.pattern(), a.values())
    }

    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.core.solve_factored(b)
    }

    fn factor_ops(&self) -> u64 {
        self.core.factor_ops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_from_dense(rows: &[&[f64]]) -> CsrMatrix {
        let mut t = TripletMatrix::new(rows.len(), rows[0].len());
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(r, c, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn triplets_merge_duplicates_in_push_order() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(0, 0, 0.5);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn zero_triplet_reserves_a_slot() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(1, 0, 3.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.pattern().slot(0, 0), Some(0));
        assert_eq!(m.pattern().slot(0, 1), None);
    }

    #[test]
    fn structural_rank_full_for_diagonal() {
        let m = csr_from_dense(&[&[2.0, 1.0, 0.0], &[0.0, 3.0, 0.0], &[1.0, 0.0, 4.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 3);
        assert!(sr.is_full());
        assert!(sr.unmatched_rows.is_empty() && sr.unmatched_cols.is_empty());
    }

    #[test]
    fn structural_rank_ignores_reserved_zero_slots() {
        // A reserved-but-zero diagonal (gmin slot at gmin = 0) must not
        // count as a structural entry: column 2 is only "covered" by a
        // placeholder, so the matrix is structurally singular.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 0.0);
        let m = t.to_csr();
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows, vec![2]);
        assert_eq!(sr.unmatched_cols, vec![2]);
    }

    #[test]
    fn structural_rank_finds_augmenting_paths() {
        // Row 0 grabs column 0 first; row 2 can only use column 0, so
        // the matching must reroute row 0 to column 1 — rank 3 needs an
        // augmenting path, not just greedy assignment.
        let m = csr_from_dense(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 0.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 3);
        assert!(sr.is_full());
    }

    #[test]
    fn structural_rank_reports_deficient_block() {
        // Rows 1 and 2 both depend only on column 1: one of them must
        // go unmatched, as must one of columns {0 is fine} — column 2
        // is untouched entirely.
        let m = csr_from_dense(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 1.0, 0.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows.len(), 1);
        assert_eq!(sr.unmatched_cols, vec![2]);
    }

    #[test]
    fn csr_mul_vec_matches_dense() {
        let a = csr_from_dense(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, 0.0], &[1.0, 0.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![5.0, 6.0, 13.0]);
        let d = a.to_dense();
        assert_eq!(d.mul_vec(&[1.0, 2.0, 3.0]), y);
    }

    #[test]
    fn assembler_records_then_reuses_slots() {
        let mut asm = PatternAssembler::new(2, 2);
        assert!(asm.is_recording());
        asm.begin();
        asm.add(0, 0, 2.0);
        asm.add(0, 1, -1.0);
        asm.add(1, 1, 3.0);
        let nnz = asm.finish().nnz();
        assert_eq!(nnz, 3);
        assert_eq!(asm.pattern_builds(), 1);
        assert!(!asm.is_recording());
        // Second cycle: same structure, new values, same pattern object.
        let p1 = Arc::clone(asm.matrix().unwrap().pattern());
        asm.begin();
        asm.add(0, 0, 5.0);
        asm.add(1, 1, 1.0);
        let m = asm.finish();
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 1), 0.0, "unwritten slot is zeroed, not stale");
        assert!(Arc::ptr_eq(&p1, m.pattern()));
        assert_eq!(asm.pattern_builds(), 1);
    }

    #[test]
    #[should_panic(expected = "not in the cached sparsity pattern")]
    fn assembler_rejects_out_of_pattern_writes() {
        let mut asm = PatternAssembler::new(2, 2);
        asm.begin();
        asm.add(0, 0, 1.0);
        asm.finish();
        asm.begin();
        asm.add(1, 0, 1.0);
    }

    #[test]
    fn assembler_invalidate_returns_to_recording() {
        let mut asm = PatternAssembler::new(2, 2);
        asm.begin();
        asm.add(0, 0, 1.0);
        asm.finish();
        asm.invalidate();
        assert!(asm.is_recording());
        asm.begin();
        asm.add(1, 0, 1.0);
        asm.add(0, 0, 1.0);
        asm.add(1, 1, 1.0);
        assert_eq!(asm.finish().nnz(), 3);
        assert_eq!(asm.pattern_builds(), 2);
    }

    fn solve_both(a: &CsrMatrix, b: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(a, b).expect("dense solve");
        let xs = sparse.solve(a, b).expect("sparse solve");
        (xd, xs)
    }

    #[test]
    fn solvers_agree_on_small_system() {
        let a = csr_from_dense(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let (xd, xs) = solve_both(&a, &[1.0, -2.0, 0.0]);
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-12, "{d} vs {s}");
        }
        assert!((xs[0] - 1.0).abs() < 1e-12);
        assert!((xs[1] + 2.0).abs() < 1e-12);
        assert!((xs[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_handles_zero_diagonal_mna_structure() {
        // Voltage-source-like block: the (2,2) diagonal is structurally
        // present but numerically zero, so pivoting is mandatory.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1e-3);
        t.push(0, 2, 1.0);
        t.push(1, 1, 2e-3);
        t.push(2, 0, 1.0);
        t.push(2, 2, 0.0);
        let a = t.to_csr();
        let mut sparse = SparseLuSolver::new();
        let x = sparse.solve(&a, &[0.0, 2e-3, 5.0]).expect("solve");
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] + 5e-3).abs() < 1e-12);
    }

    #[test]
    fn refactor_reuses_pattern_and_stays_correct() {
        let mut asm = PatternAssembler::new(3, 3);
        let stamp = |asm: &mut PatternAssembler, g: f64| {
            asm.begin();
            asm.add(0, 0, g);
            asm.add(0, 1, -g);
            asm.add(1, 0, -g);
            asm.add(1, 1, g + 1e-3);
            asm.add(1, 2, -1e-3);
            asm.add(2, 1, -1e-3);
            asm.add(2, 2, 2e-3);
        };
        let mut sparse = SparseLuSolver::new();
        stamp(&mut asm, 1.0);
        sparse.factor(asm.finish()).expect("first factor");
        assert_eq!(sparse.symbolic_factor_count(), 1);
        stamp(&mut asm, 2.5);
        let a = asm.finish();
        sparse.factor(a).expect("refactor");
        assert_eq!(sparse.symbolic_factor_count(), 1, "pattern reused");
        assert_eq!(sparse.refactor_count(), 1);
        let b = [1.0, 0.0, -1.0];
        let x = sparse.solve_factored(&b).expect("solve");
        let mut dense = DenseLuSolver::new();
        let xd = dense.solve(a, &b).expect("dense");
        for (s, d) in x.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12, "{s} vs {d}");
        }
    }

    #[test]
    fn singular_matrix_is_reported_by_both() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        assert!(matches!(
            dense.solve(&a, &[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(matches!(
            sparse.solve(&a, &[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        let a = t.to_csr();
        let mut sparse = SparseLuSolver::new();
        assert!(matches!(
            sparse.factor(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn tridiagonal_sparse_beats_dense_op_count() {
        let n = 64;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csr();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        dense.factor(&a).expect("dense factor");
        sparse.factor(&a).expect("sparse factor");
        assert!(
            sparse.factor_ops() < dense.factor_ops() / 100,
            "tridiagonal LU should be ~O(n): sparse {} vs dense {}",
            sparse.factor_ops(),
            dense.factor_ops()
        );
        // Same count when replaying the pattern.
        sparse.factor(&a).expect("refactor");
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let xs = sparse.solve_factored(&b).expect("solve");
        let xd = dense.solve_factored(&b).expect("solve");
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn complex_lu_matches_hand_solution() {
        // (1+j)·x0 + 1·x1 = 1 ;  1·x0 + (1−j)·x1 = j
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(0, 1, 0.0);
        t.push(1, 0, 0.0);
        t.push(1, 1, 0.0);
        let pattern = Arc::clone(t.to_csr().pattern());
        let vals = [
            Complex::new(1.0, 1.0),
            Complex::ONE,
            Complex::ONE,
            Complex::new(1.0, -1.0),
        ];
        let mut lu = SparseLu::<Complex>::new();
        lu.factor(&pattern, &vals).expect("complex factor");
        let x = lu
            .solve_factored(&[Complex::ONE, Complex::I])
            .expect("complex solve");
        // Determinant = (1+j)(1−j) − 1 = 1; Cramer gives
        // x0 = (1−j) − j = 1 − 2j, x1 = (1+j)j − 1 = −2 + j... recompute:
        // x0 = (1·(1−j) − 1·j) / 1 = 1 − 2j
        // x1 = ((1+j)·j − 1·1) / 1 = −2 + j
        assert!((x[0] - Complex::new(1.0, -2.0)).abs() < 1e-14, "{}", x[0]);
        assert!((x[1] - Complex::new(-2.0, 1.0)).abs() < 1e-14, "{}", x[1]);
        // Residual check: A x == b.
        let b0 = vals[0] * x[0] + vals[1] * x[1];
        let b1 = vals[2] * x[0] + vals[3] * x[1];
        assert!((b0 - Complex::ONE).abs() < 1e-14);
        assert!((b1 - Complex::I).abs() < 1e-14);
    }

    #[test]
    fn complex_refactor_replays_frozen_plan() {
        // An RC-divider style system re-valued across frequencies: the
        // pattern is ordered once, every later frequency replays it.
        let n = 16;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let csr = t.to_csr();
        let pattern = Arc::clone(csr.pattern());
        let g: Vec<f64> = csr.values().to_vec();
        let mut lu = SparseLu::<Complex>::new();
        let mut first_ops = 0;
        for (k, omega) in [1.0, 10.0, 100.0, 1000.0].into_iter().enumerate() {
            let vals: Vec<Complex> = g.iter().map(|&gr| Complex::new(gr, 1e-3 * omega)).collect();
            lu.factor(&pattern, &vals).expect("factor");
            if k == 0 {
                first_ops = lu.factor_ops();
            }
            let b = vec![Complex::ONE; n];
            let x = lu.solve_factored(&b).expect("solve");
            // Residual of the tridiagonal system at every row.
            for r in 0..n {
                let mut acc = vals[pattern.slot(r, r).unwrap()] * x[r];
                if r > 0 {
                    acc += vals[pattern.slot(r, r - 1).unwrap()] * x[r - 1];
                }
                if r + 1 < n {
                    acc += vals[pattern.slot(r, r + 1).unwrap()] * x[r + 1];
                }
                assert!((acc - Complex::ONE).abs() < 1e-12, "row {r}: {acc}");
            }
        }
        assert_eq!(lu.symbolic_factor_count(), 1, "ordered exactly once");
        assert_eq!(lu.refactor_count(), 3, "re-valued per frequency");
        assert_eq!(lu.factor_ops(), first_ops, "replay costs the same ops");
    }

    #[test]
    fn complex_singular_matrix_is_reported() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let csr = t.to_csr();
        let vals: Vec<Complex> = csr.values().iter().map(|&v| Complex::from(v)).collect();
        let mut lu = SparseLu::<Complex>::new();
        assert!(matches!(
            lu.factor(csr.pattern(), &vals),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(matches!(
            lu.solve_factored(&[Complex::ONE, Complex::ONE]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn generic_factor_rejects_bad_shapes() {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let csr = t.to_csr();
        let mut lu = SparseLu::<f64>::new();
        assert!(matches!(
            lu.factor(csr.pattern(), csr.values()),
            Err(NumericsError::InvalidInput(_))
        ));
        let mut sq = TripletMatrix::new(2, 2);
        sq.push(0, 0, 1.0);
        sq.push(1, 1, 1.0);
        let sq = sq.to_csr();
        assert!(matches!(
            lu.factor(sq.pattern(), &[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn dense_lu_ops_formula() {
        // n = 3: k=0 → 2 + 4, k=1 → 1 + 1, k=2 → 0.
        assert_eq!(dense_lu_ops(3), 8);
        assert_eq!(dense_lu_ops(0), 0);
        assert_eq!(dense_lu_ops(1), 0);
    }

    #[test]
    fn solve_before_factor_is_an_error() {
        let dense = DenseLuSolver::new();
        let sparse = SparseLuSolver::new();
        assert!(matches!(
            dense.solve_factored(&[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        assert!(matches!(
            sparse.solve_factored(&[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn failed_factor_invalidates_previous_factors() {
        // A successful factor followed by a singular one: the solver
        // must not serve the (partially overwritten) old factors.
        let a1 = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut a2 = a1.clone();
        a2.set_zero();
        a2.add_at(0, 0, 1.0);
        a2.add_at(0, 1, 2.0);
        a2.add_at(1, 0, 2.0);
        a2.add_at(1, 1, 4.0);
        let mut sparse = SparseLuSolver::new();
        sparse.factor(&a1).expect("first factor");
        assert!(sparse.factor(&a2).is_err());
        assert!(matches!(
            sparse.solve_factored(&[1.0, 2.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        let mut dense = DenseLuSolver::new();
        dense.factor(&a1).expect("first factor");
        assert!(dense.factor(&a2).is_err());
        assert!(matches!(
            dense.solve_factored(&[1.0, 2.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        // Both recover with a good matrix.
        sparse.factor(&a1).expect("recovery factor");
        dense.factor(&a1).expect("recovery factor");
        assert!(sparse.solve_factored(&[1.0, 2.0]).is_ok());
        assert!(dense.solve_factored(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn repivot_on_value_collapse_keeps_answers_right() {
        // First factor with a dominant (0,0); then flip dominance so the
        // frozen pivot order would divide by ~0 and must re-pivot.
        let stamp = |a11: f64, a21: f64| {
            let mut t = TripletMatrix::new(2, 2);
            t.push(0, 0, a11);
            t.push(0, 1, 1.0);
            t.push(1, 0, a21);
            t.push(1, 1, 1.0);
            t.to_csr()
        };
        let a1 = stamp(4.0, 1.0);
        let mut sparse = SparseLuSolver::new();
        sparse.factor(&a1).expect("factor 1");
        // Same pattern object is required for the replay path; rebuild
        // with identical structure and tiny pivot.
        let mut a2 = a1.clone();
        a2.set_zero();
        a2.add_at(0, 0, 1e-30);
        a2.add_at(0, 1, 1.0);
        a2.add_at(1, 0, 1.0);
        a2.add_at(1, 1, 1.0);
        sparse.factor(&a2).expect("factor 2 re-pivots");
        let x = sparse.solve_factored(&[1.0, 2.0]).expect("solve");
        let mut dense = DenseLuSolver::new();
        let xd = dense.solve(&a2, &[1.0, 2.0]).expect("dense");
        for (s, d) in x.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }
}
