//! Sparse linear algebra for MNA-style systems.
//!
//! The circuit simulator assembles the same Jacobian structure thousands
//! of times (once per Newton trial point, per sweep point, per transient
//! step). This module exploits that repetition at two levels:
//!
//! * **Assembly** — [`PatternAssembler`] records the sparsity pattern on
//!   the first assembly (triplet pushes) and compiles it into a CSR
//!   matrix with a shared [`SparsityPattern`]; every later assembly
//!   writes values straight into the preallocated slots with no
//!   allocation and no sorting.
//! * **Factorisation** — the [`LinearSolver`] trait has two
//!   implementations: [`DenseLuSolver`], the existing dense
//!   partial-pivoting LU as a fallback, and [`SparseLuSolver`], a sparse
//!   LU whose pivot order and fill-in pattern are chosen once
//!   (Markowitz-style threshold pivoting) and then **reused across
//!   factorizations** — subsequent factors replay the elimination over
//!   the frozen pattern with a dense scatter workspace, KLU-style.
//!
//! Both solvers count the multiply–accumulate/divide operations of their
//! most recent factorisation ([`LinearSolver::factor_ops`]), so the
//! sparse-vs-dense win is measurable, not just assumed.
//!
//! # Pattern-freeze and replay invariants
//!
//! The fast paths of this module rely on four invariants; violating
//! them is a bug in the *caller*, and the module fails loudly rather
//! than silently degrading:
//!
//! 1. **The recorded pattern is a superset of every later assembly.**
//!    After [`PatternAssembler::finish`] compiles the pattern, an
//!    [`PatternAssembler::add`] to an entry outside it panics — the
//!    assembled structure changed without
//!    [`PatternAssembler::invalidate`]. Callers must therefore record
//!    every entry that can *ever* be structurally nonzero, pushing an
//!    explicit `0.0` for entries whose value happens to vanish at the
//!    recording point (e.g. a gmin diagonal recorded at gmin = 0, or a
//!    companion-model conductance before the step size is known).
//! 2. **The elimination plan is keyed on the pattern, not the values.**
//!    [`SparseLuSolver::factor`] replays its frozen pivot order and
//!    fill-in pattern whenever the incoming matrix shares the recorded
//!    [`SparsityPattern`] (pointer-equal `Arc` or structurally equal
//!    contents). Any *value* change — new Newton iterate, new sweep
//!    point, new transient step size — takes the replay path: no pivot
//!    search, no fill discovery, no allocation.
//! 3. **Replay self-checks its pivots.** A frozen pivot whose magnitude
//!    collapses below `REPIVOT_RATIO` (10⁻¹²) of its row's U-part
//!    maximum — or becomes zero or non-finite — aborts the replay, and
//!    `factor` transparently redoes the full Markowitz-threshold
//!    pivoting factorisation and freezes the new plan. Callers never
//!    see this as an error unless the matrix is genuinely singular; the
//!    [`SparseLuSolver::symbolic_factor_count`] /
//!    [`SparseLuSolver::refactor_count`] counters make the fallback
//!    observable in benchmarks.
//! 4. **Partial refactorization trusts the changed-slot set.** A caller
//!    of [`SparseLu::factor_partial`] promises that every A-pattern slot
//!    *not* listed in `changed_slots` holds a value bitwise identical to
//!    the one given to the previous successful factorisation. Under that
//!    contract the solver marks the elimination step of each changed
//!    slot's row dirty, propagates dirtiness forward through the frozen
//!    elimination DAG (step `k` is dirty when any virtual column of its
//!    L part is a dirty step — the recorded U structure, transposed),
//!    and replays *only* the dirty steps; every clean step keeps its
//!    L/U row and pivot from the previous factorisation, so the result
//!    is bitwise identical to a full replay. The replayed steps run the
//!    same pivot-collapse self-check as invariant 3, and a collapse
//!    aborts to a full re-pivot exactly as a full replay would. Listing
//!    *extra* (unchanged) slots is always safe — it only costs work; a
//!    *missing* changed slot silently factors the wrong matrix, which is
//!    why [`SparseLu::factor_partial`] is fed from value diffs, never
//!    from per-element bookkeeping guesses.

use crate::complex::Complex;
use crate::error::NumericsError;
use crate::linalg::Matrix;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::sync::Arc;

/// The symbolic (structure-only) part of a CSR matrix: row pointers and
/// sorted column indices, shareable between matrices via [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The sorted column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Storage slot of entry (`r`, `c`), or `None` when the entry is not
    /// part of the pattern.
    pub fn slot(&self, r: usize, c: usize) -> Option<usize> {
        let base = self.row_ptr[r];
        self.row_cols(r).binary_search(&c).ok().map(|i| base + i)
    }

    /// The storage-slot range of row `r`: `row_cols(r)[k]` lives in slot
    /// `row_range(r).start + k` of the value array.
    pub fn row_range(&self, r: usize) -> std::ops::Range<usize> {
        self.row_ptr[r]..self.row_ptr[r + 1]
    }
}

/// Coordinate-format accumulator used while a sparsity pattern is still
/// being discovered. Duplicate pushes to the same entry are summed when
/// the triplets are compiled to CSR.
#[derive(Debug, Clone)]
pub struct TripletMatrix {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty accumulator of the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        TripletMatrix {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Number of raw (pre-merge) triplets pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes all triplets, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Adds `v` at (`r`, `c`). A value of `0.0` still records the entry
    /// as structurally nonzero — assemblers rely on this to reserve
    /// slots whose value happens to vanish at the recording point.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        self.entries.push((r, c, v));
    }

    /// Compiles the triplets into a CSR matrix, merging duplicates by
    /// summation (in push order, so the result is bitwise identical to
    /// dense `+=` assembly).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (self.entries[i].0, self.entries[i].1));
        let mut row_ptr = vec![0usize; self.n_rows + 1];
        let mut col_idx = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut last: Option<(usize, usize)> = None;
        for &i in &order {
            let (r, c, v) = self.entries[i];
            if last == Some((r, c)) {
                *values.last_mut().expect("merged entry exists") += v;
            } else {
                row_ptr[r + 1] += 1;
                col_idx.push(c);
                values.push(v);
                last = Some((r, c));
            }
        }
        for r in 0..self.n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            pattern: Arc::new(SparsityPattern {
                n_rows: self.n_rows,
                n_cols: self.n_cols,
                row_ptr,
                col_idx,
            }),
            values,
        }
    }
}

/// A compressed-sparse-row matrix whose [`SparsityPattern`] is shared
/// (and comparable by pointer) so solvers can cache symbolic work per
/// pattern.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    pattern: Arc<SparsityPattern>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pattern.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pattern.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// The shared symbolic pattern.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// The stored values, in pattern slot order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sets every stored value to zero, keeping the pattern.
    pub fn set_zero(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Adds `v` to entry (`r`, `c`). Returns `false` (and changes
    /// nothing) when the entry is outside the pattern.
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) -> bool {
        match self.pattern.slot(r, c) {
            Some(i) => {
                self.values[i] += v;
                true
            }
            None => false,
        }
    }

    /// Value at (`r`, `c`) — zero for entries outside the pattern.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.pattern.slot(r, c).map_or(0.0, |i| self.values[i])
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols(), "dimension mismatch");
        let mut y = vec![0.0; self.rows()];
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.pattern.row_ptr[r];
            let hi = self.pattern.row_ptr[r + 1];
            *yr = (lo..hi)
                .map(|i| self.values[i] * x[self.pattern.col_idx[i]])
                .sum();
        }
        y
    }

    /// Expands to a dense [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics for a zero-dimension matrix (dense [`Matrix`] requires
    /// positive dimensions).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        self.scatter_into(&mut m);
        m
    }

    /// Writes this matrix into `dense` (which must already have the right
    /// shape), zeroing everything else.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn scatter_into(&self, dense: &mut Matrix) {
        assert!(
            dense.rows() == self.rows() && dense.cols() == self.cols(),
            "dimension mismatch"
        );
        dense.fill(0.0);
        for r in 0..self.rows() {
            let lo = self.pattern.row_ptr[r];
            let hi = self.pattern.row_ptr[r + 1];
            for i in lo..hi {
                dense[(r, self.pattern.col_idx[i])] = self.values[i];
            }
        }
    }
}

/// Result of a [`structural_rank`] computation: the size of a maximum
/// row–column matching plus the rows and columns left unmatched.
///
/// A square matrix is **structurally nonsingular** — some choice of
/// values on its nonzero entries makes it invertible — exactly when the
/// matching is perfect ([`StructuralRank::is_full`]). A structurally
/// singular matrix is numerically singular for *every* assignment of
/// values, so the unmatched columns pinpoint unknowns that no equation
/// can determine (and the unmatched rows, equations that constrain
/// nothing) before any factorisation is attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralRank {
    /// Size of the maximum bipartite matching between rows and columns.
    pub rank: usize,
    /// Rows not covered by the matching, ascending.
    pub unmatched_rows: Vec<usize>,
    /// Columns not covered by the matching, ascending.
    pub unmatched_cols: Vec<usize>,
}

impl StructuralRank {
    /// `true` when every row and every column is matched (for a square
    /// matrix: `rank == n`, i.e. structurally nonsingular).
    pub fn is_full(&self) -> bool {
        self.unmatched_rows.is_empty() && self.unmatched_cols.is_empty()
    }
}

/// Structural rank of a sparse matrix via maximum bipartite matching
/// (Kuhn's augmenting-path algorithm) on its *nonzero* entries.
///
/// Entries whose stored value is exactly `0.0` are ignored: assemblers
/// reserve slots for entries that can *become* nonzero later (a gmin
/// diagonal recorded at gmin = 0, a companion-model conductance before
/// the step size is known), and such placeholders are not structural
/// entries of the assembled operator. Callers who want the rank of the
/// pattern itself should therefore assemble with representative values.
///
/// The maximum matching is the entry point to the Dulmage–Mendelsohn
/// coarse decomposition (the roadmap's BTF ordering work); here it is
/// used to diagnose structurally singular MNA systems with the exact
/// unmatched unknowns.
pub fn structural_rank(m: &CsrMatrix) -> StructuralRank {
    let pattern = m.pattern();
    let values = m.values();
    let n_rows = pattern.rows();
    let n_cols = pattern.cols();

    // row_for_col[c] = row currently matched to column c (usize::MAX =
    // unmatched). `seen` carries a per-phase stamp so it is never
    // cleared between augmenting phases.
    let mut row_for_col = vec![usize::MAX; n_cols];
    let mut seen = vec![0usize; n_cols];

    fn augment(
        r: usize,
        pattern: &SparsityPattern,
        values: &[f64],
        stamp: usize,
        seen: &mut [usize],
        row_for_col: &mut [usize],
    ) -> bool {
        let slots = pattern.row_range(r);
        for (k, &c) in pattern.row_cols(r).iter().enumerate() {
            if values[slots.start + k] == 0.0 || seen[c] == stamp {
                continue;
            }
            seen[c] = stamp;
            let owner = row_for_col[c];
            if owner == usize::MAX || augment(owner, pattern, values, stamp, seen, row_for_col) {
                row_for_col[c] = r;
                return true;
            }
        }
        false
    }

    let mut rank = 0;
    for r in 0..n_rows {
        // Stamps start at 1 so the zero-initialised `seen` is "unseen".
        if augment(r, pattern, values, r + 1, &mut seen, &mut row_for_col) {
            rank += 1;
        }
    }

    let mut row_matched = vec![false; n_rows];
    for &r in row_for_col.iter().filter(|&&r| r != usize::MAX) {
        row_matched[r] = true;
    }
    StructuralRank {
        rank,
        unmatched_rows: (0..n_rows).filter(|&r| !row_matched[r]).collect(),
        unmatched_cols: (0..n_cols)
            .filter(|&c| row_for_col[c] == usize::MAX)
            .collect(),
    }
}

/// Fill-reducing column pre-ordering used by [`SparseLu`] when it
/// freezes an elimination plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillOrdering {
    /// The static ordering of the first release: ascending initial
    /// column degree, ties by index (dense rail columns go last).
    AscendingDegree,
    /// Block-triangular (BTF) pre-permutation — strongly connected
    /// components of the column digraph induced by a structural
    /// matching, in topological order — with a minimum-degree
    /// (AMD-family) ordering of `A + Aᵀ` inside each diagonal block.
    AmdBtf,
    /// Run the symbolic elimination under both orderings and freeze
    /// whichever plan records fewer L+U entries; ties keep
    /// [`FillOrdering::AscendingDegree`]. Guarantees fill never exceeds
    /// the static ordering at the cost of a second (rare) symbolic
    /// pass. The default.
    #[default]
    Auto,
}

/// The static fill-reducing column ordering: ascending initial column
/// degree, ties broken by column index.
///
/// # Panics
///
/// Panics if the pattern is not square.
pub fn ascending_degree_order(pattern: &SparsityPattern) -> Vec<usize> {
    assert_eq!(
        pattern.rows(),
        pattern.cols(),
        "ordering needs a square pattern"
    );
    let n = pattern.cols();
    let mut col_degree = vec![0usize; n];
    for &c in &pattern.col_idx {
        col_degree[c] += 1;
    }
    let mut col_order: Vec<usize> = (0..n).collect();
    col_order.sort_by_key(|&c| (col_degree[c], c));
    col_order
}

/// Sorted, deduplicated adjacency lists of `A + Aᵀ` without the
/// diagonal — the undirected graph minimum-degree ordering works on.
fn symmetrized_adjacency(pattern: &SparsityPattern) -> Vec<Vec<usize>> {
    let n = pattern.rows();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for &c in pattern.row_cols(r) {
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Sorted union of two sorted neighbour lists, dropping `skip_a`,
/// `skip_b` and dead vertices.
fn merge_live_union(
    a: &[usize],
    b: &[usize],
    skip_a: usize,
    skip_b: usize,
    alive: &[bool],
) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition"),
        };
        if v != skip_a && v != skip_b && alive[v] {
            out.push(v);
        }
    }
    out
}

/// Minimum-degree elimination ordering of the vertices in `members`
/// (ascending indices into the full graph), on the subgraph of
/// `adj_full` they induce. Exact external degrees via explicit clique
/// merging; ties broken by smallest index, so the result is
/// deterministic.
fn min_degree_order(adj_full: &[Vec<usize>], members: &[usize]) -> Vec<usize> {
    let n = members.len();
    if n <= 1 {
        return members.to_vec();
    }
    let mut local = vec![usize::MAX; adj_full.len()];
    for (i, &v) in members.iter().enumerate() {
        local[v] = i;
    }
    // Local adjacency restricted to the member set. `members` is
    // ascending, so mapped lists stay sorted.
    let mut adj: Vec<Vec<usize>> = members
        .iter()
        .map(|&v| {
            adj_full[v]
                .iter()
                .filter_map(|&u| (local[u] != usize::MAX).then_some(local[u]))
                .collect()
        })
        .collect();
    let mut alive = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| (adj[v].len(), v))
            .expect("a live vertex remains");
        alive[v] = false;
        order.push(members[v]);
        // Eliminating v turns its live neighbourhood into a clique and
        // removes v — the neighbours' lists stay exact-live-degree.
        let nbrs = std::mem::take(&mut adj[v]);
        for &u in nbrs.iter().filter(|&&u| alive[u]) {
            adj[u] = merge_live_union(&adj[u], &nbrs, u, v, &alive);
        }
    }
    order
}

/// Structural perfect matching `column → row` on the pattern (values
/// ignored: reserved zero slots are structural here, since the plan
/// must stay valid for any values with this structure). `None` when no
/// perfect matching exists (structurally singular).
fn pattern_matching(pattern: &SparsityPattern) -> Option<Vec<usize>> {
    let n = pattern.rows();
    let mut row_for_col = vec![usize::MAX; n];
    let mut seen = vec![0usize; n];

    fn augment(
        r: usize,
        pattern: &SparsityPattern,
        stamp: usize,
        seen: &mut [usize],
        row_for_col: &mut [usize],
    ) -> bool {
        for &c in pattern.row_cols(r) {
            if seen[c] == stamp {
                continue;
            }
            seen[c] = stamp;
            let owner = row_for_col[c];
            if owner == usize::MAX || augment(owner, pattern, stamp, seen, row_for_col) {
                row_for_col[c] = r;
                return true;
            }
        }
        false
    }

    for r in 0..n {
        if !augment(r, pattern, r + 1, &mut seen, &mut row_for_col) {
            return None;
        }
    }
    Some(row_for_col)
}

/// Tarjan's strongly-connected-components algorithm, iterative so deep
/// chains cannot overflow the call stack. Components come out in
/// reverse topological order of the condensation.
fn tarjan_scc(edges: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comps: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        call.push((start, 0));
        while let Some(frame) = call.last_mut() {
            let v = frame.0;
            if frame.1 < edges[v].len() {
                let w = edges[v][frame.1];
                frame.1 += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(parent) = call.last() {
                    let p = parent.0;
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("component members are on the stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// BTF + AMD column ordering: finds a structural matching, permutes to
/// block-triangular form (Tarjan SCCs of the matched column digraph in
/// topological order) and orders each diagonal block by minimum degree
/// on `A + Aᵀ`. Falls back to plain minimum degree when the pattern has
/// no perfect matching (it is then structurally singular and the
/// factorisation will report that on its own).
///
/// # Panics
///
/// Panics if the pattern is not square.
pub fn btf_amd_order(pattern: &SparsityPattern) -> Vec<usize> {
    assert_eq!(
        pattern.rows(),
        pattern.cols(),
        "ordering needs a square pattern"
    );
    let n = pattern.rows();
    let adj = symmetrized_adjacency(pattern);
    let Some(row_for_col) = pattern_matching(pattern) else {
        let members: Vec<usize> = (0..n).collect();
        return min_degree_order(&adj, &members);
    };
    // Column digraph: c → c' when c's matched row has an entry in c'.
    let edges: Vec<Vec<usize>> = (0..n)
        .map(|c| {
            pattern
                .row_cols(row_for_col[c])
                .iter()
                .copied()
                .filter(|&c2| c2 != c)
                .collect()
        })
        .collect();
    let comps = tarjan_scc(&edges);
    let mut order = Vec::with_capacity(n);
    for comp in comps.iter().rev() {
        let mut members = comp.clone();
        members.sort_unstable();
        order.extend(min_degree_order(&adj, &members));
    }
    order
}

/// Minimum-degree (AMD-family) ordering of the whole pattern on
/// `A + Aᵀ`, without the BTF pre-permutation.
///
/// # Panics
///
/// Panics if the pattern is not square.
pub fn amd_order(pattern: &SparsityPattern) -> Vec<usize> {
    assert_eq!(
        pattern.rows(),
        pattern.cols(),
        "ordering needs a square pattern"
    );
    let members: Vec<usize> = (0..pattern.rows()).collect();
    min_degree_order(&symmetrized_adjacency(pattern), &members)
}

/// Cumulative factorisation-path statistics of a [`LinearSolver`]: how
/// often each path ran and how much of the elimination it recomputed.
/// All counters are monotone; per-analysis figures come from
/// [`FactorPathStats::delta_since`] against a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactorPathStats {
    /// Full pivot-searching factorisations (symbolic + numeric).
    pub symbolic_factorizations: u64,
    /// Full replays of a frozen elimination plan.
    pub replay_refactorizations: u64,
    /// Partial replays restricted to changed-slot-affected columns.
    pub partial_refactorizations: u64,
    /// Elimination steps (columns) actually recomputed, over all paths.
    pub columns_recomputed: u64,
    /// Elimination steps that a full recomputation would have run —
    /// `columns_recomputed / columns_total` is the partial-path win.
    pub columns_total: u64,
}

impl FactorPathStats {
    /// Component-wise difference against an earlier snapshot
    /// (saturating, so a solver swap mid-flight yields zeros rather
    /// than wrapping).
    pub fn delta_since(&self, baseline: &FactorPathStats) -> FactorPathStats {
        FactorPathStats {
            symbolic_factorizations: self
                .symbolic_factorizations
                .saturating_sub(baseline.symbolic_factorizations),
            replay_refactorizations: self
                .replay_refactorizations
                .saturating_sub(baseline.replay_refactorizations),
            partial_refactorizations: self
                .partial_refactorizations
                .saturating_sub(baseline.partial_refactorizations),
            columns_recomputed: self
                .columns_recomputed
                .saturating_sub(baseline.columns_recomputed),
            columns_total: self.columns_total.saturating_sub(baseline.columns_total),
        }
    }
}

impl AddAssign for FactorPathStats {
    fn add_assign(&mut self, rhs: FactorPathStats) {
        self.symbolic_factorizations += rhs.symbolic_factorizations;
        self.replay_refactorizations += rhs.replay_refactorizations;
        self.partial_refactorizations += rhs.partial_refactorizations;
        self.columns_recomputed += rhs.columns_recomputed;
        self.columns_total += rhs.columns_total;
    }
}

/// Pattern-caching assembly target.
///
/// The first assembly cycle (`begin` → `add`s → `finish`) records
/// triplets and compiles the sparsity pattern; every later cycle zeroes
/// the stored values and routes each `add` to its preallocated slot —
/// no allocation, no sorting, no hashing. Call [`invalidate`] when the
/// assembled structure changes (e.g. a circuit gained elements) to force
/// a re-recording.
///
/// With [`set_track_writes`] enabled the recording cycle also remembers
/// the `(row, col)` of every `add` in call order and compiles that
/// sequence to pattern slots. Later cycles that replay the same
/// sequence skip the per-add binary search (a direct slot `+=`), and
/// callers can partition [`write_slots`] by add index to learn which
/// pattern slots each contributor (circuit element) touches — the
/// bookkeeping behind partial refactorization. A cycle that deviates
/// from the recorded sequence falls back to the searched path from the
/// point of divergence and stays correct.
///
/// [`invalidate`]: PatternAssembler::invalidate
/// [`set_track_writes`]: PatternAssembler::set_track_writes
/// [`write_slots`]: PatternAssembler::write_slots
#[derive(Debug)]
pub struct PatternAssembler {
    state: AsmState,
    pattern_builds: usize,
    track_writes: bool,
    /// `(row, col)` of every recorded `add`, in call order.
    writes: Vec<(usize, usize)>,
    /// `writes` compiled to pattern slots at `finish`.
    write_slots: Vec<usize>,
    /// Position in the recorded write sequence of the current cycle.
    cursor: usize,
    replay_hits: u64,
    replay_misses: u64,
}

#[derive(Debug)]
enum AsmState {
    Recording(TripletMatrix),
    Ready(CsrMatrix),
}

impl PatternAssembler {
    /// Creates an assembler for matrices of the given shape, starting in
    /// recording mode.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        PatternAssembler {
            state: AsmState::Recording(TripletMatrix::new(n_rows, n_cols)),
            pattern_builds: 0,
            track_writes: false,
            writes: Vec::new(),
            write_slots: Vec::new(),
            cursor: 0,
            replay_hits: 0,
            replay_misses: 0,
        }
    }

    /// `true` while the sparsity pattern is still being recorded.
    pub fn is_recording(&self) -> bool {
        matches!(self.state, AsmState::Recording(_))
    }

    /// Enables (or disables) write-sequence tracking. Enable *before*
    /// the recording cycle: a pattern compiled without tracking has no
    /// recorded sequence, so every later add takes the searched path.
    pub fn set_track_writes(&mut self, on: bool) {
        self.track_writes = on;
    }

    /// Number of adds of the recorded (pattern-compiling) cycle.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Pattern slot of each recorded add, in call order (empty until a
    /// tracked recording cycle has finished). Stable across cycles, so
    /// callers may index it by add ranges captured during recording.
    pub fn write_slots(&self) -> &[usize] {
        &self.write_slots
    }

    /// Adds routed through the recorded write sequence (no slot search).
    pub fn replay_hits(&self) -> u64 {
        self.replay_hits
    }

    /// Adds that missed the recorded sequence and fell back to the
    /// searched path.
    pub fn replay_misses(&self) -> u64 {
        self.replay_misses
    }

    /// How many times a pattern has been compiled (diagnostics; lets
    /// callers assert that structure changes rebuild the cache).
    pub fn pattern_builds(&self) -> usize {
        self.pattern_builds
    }

    /// Starts a new assembly cycle: clears triplets (recording mode) or
    /// zeroes the cached values (pattern mode).
    pub fn begin(&mut self) {
        match &mut self.state {
            AsmState::Recording(t) => {
                t.clear();
                self.writes.clear();
            }
            AsmState::Ready(m) => m.set_zero(),
        }
        self.cursor = 0;
    }

    /// Adds `v` at (`r`, `c`). Zero values still reserve a slot while
    /// recording.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds, or if the entry is
    /// missing from a cached pattern — that means the assembled
    /// structure changed without [`PatternAssembler::invalidate`].
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        match &mut self.state {
            AsmState::Recording(t) => {
                t.push(r, c, v);
                if self.track_writes {
                    self.writes.push((r, c));
                }
            }
            AsmState::Ready(m) => {
                if self.cursor < self.write_slots.len() && self.writes[self.cursor] == (r, c) {
                    m.values[self.write_slots[self.cursor]] += v;
                    self.cursor += 1;
                    self.replay_hits += 1;
                } else {
                    self.replay_misses += 1;
                    assert!(
                        m.add_at(r, c, v),
                        "entry ({r}, {c}) is not in the cached sparsity pattern; \
                         call invalidate() after structural changes"
                    );
                }
            }
        }
    }

    /// Finishes the cycle and returns the assembled matrix, compiling
    /// the pattern on the first call.
    pub fn finish(&mut self) -> &CsrMatrix {
        if let AsmState::Recording(t) = &self.state {
            let m = t.to_csr();
            self.write_slots = self
                .writes
                .iter()
                .map(|&(r, c)| m.pattern.slot(r, c).expect("recorded write is in pattern"))
                .collect();
            self.state = AsmState::Ready(m);
            self.pattern_builds += 1;
        }
        match &self.state {
            AsmState::Ready(m) => m,
            AsmState::Recording(_) => unreachable!("compiled above"),
        }
    }

    /// The assembled matrix of the last finished cycle, if any.
    pub fn matrix(&self) -> Option<&CsrMatrix> {
        match &self.state {
            AsmState::Ready(m) => Some(m),
            AsmState::Recording(_) => None,
        }
    }

    /// Discards the cached pattern and returns to recording mode.
    pub fn invalidate(&mut self) {
        let (r, c) = match &self.state {
            AsmState::Recording(t) => (t.rows(), t.cols()),
            AsmState::Ready(m) => (m.rows(), m.cols()),
        };
        self.state = AsmState::Recording(TripletMatrix::new(r, c));
        self.writes.clear();
        self.write_slots.clear();
        self.cursor = 0;
    }
}

/// A direct solver for square sparse systems `A x = b`.
///
/// `factor` may cache symbolic work keyed on the matrix's shared
/// [`SparsityPattern`]; `solve_factored` reuses the latest factors for
/// any number of right-hand sides.
///
/// `Send` is a supertrait so a boxed solver — and anything caching one,
/// like a warm Newton engine — can migrate between worker threads.
pub trait LinearSolver: std::fmt::Debug + Send {
    /// Short human-readable solver name (for benchmark tables).
    fn name(&self) -> &'static str;

    /// Factors `a`, replacing any previously stored factors. A failed
    /// factorisation discards the previous factors as well (they may
    /// have been partially overwritten), so `solve_factored` errors
    /// rather than mixing stale and new data.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for (numerically)
    /// singular input and [`NumericsError::InvalidInput`] for non-square
    /// input.
    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError>;

    /// Solves `A x = b` with the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when there are no valid
    /// factors (never factored, or the last factor failed) or `b` has
    /// the wrong length.
    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError>;

    /// Factors `a` and solves in one call.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`LinearSolver::factor`] and
    /// [`LinearSolver::solve_factored`].
    fn solve(&mut self, a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.factor(a)?;
        self.solve_factored(b)
    }

    /// Multiply–accumulate + divide count of the most recent
    /// factorisation.
    fn factor_ops(&self) -> u64;

    /// Factors `a` under the partial-refactorization contract (module
    /// invariant 4): the caller promises that every pattern slot *not*
    /// listed in `changed_slots` holds a value bitwise identical to the
    /// previous successful factorisation. Solvers without a partial
    /// path ignore the hint and run a full [`LinearSolver::factor`],
    /// which is always a correct (if slower) implementation of the
    /// contract.
    ///
    /// # Errors
    ///
    /// Same as [`LinearSolver::factor`].
    fn factor_partial(
        &mut self,
        a: &CsrMatrix,
        changed_slots: &[usize],
    ) -> Result<(), NumericsError> {
        let _ = changed_slots;
        self.factor(a)
    }

    /// Cumulative factorisation-path statistics. Solvers without path
    /// tracking report all zeros.
    fn factor_stats(&self) -> FactorPathStats {
        FactorPathStats::default()
    }
}

/// Exact operation count (divisions + multiply–subtracts) of the dense
/// partial-pivoting LU in [`Matrix::lu`] for an `n × n` matrix.
pub fn dense_lu_ops(n: usize) -> u64 {
    (0..n)
        .map(|k| {
            let below = (n - k - 1) as u64;
            below + below * below
        })
        .sum()
}

/// The dense fallback: scatters the sparse matrix into a reused dense
/// buffer and runs the existing partial-pivoting LU.
#[derive(Debug, Default)]
pub struct DenseLuSolver {
    buffer: Option<Matrix>,
    factors: Option<crate::linalg::LuDecomposition>,
    ops: u64,
    factors_done: u64,
    columns_done: u64,
}

impl DenseLuSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LinearSolver for DenseLuSolver {
    fn name(&self) -> &'static str {
        "dense-lu"
    }

    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError> {
        let n = a.rows();
        if n != a.cols() {
            return Err(NumericsError::InvalidInput(format!(
                "factor requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let reuse = self.buffer.as_ref().is_some_and(|m| m.rows() == n);
        if !reuse {
            self.buffer = Some(Matrix::zeros(n, n));
        }
        let dense = self.buffer.as_mut().expect("buffer allocated above");
        a.scatter_into(dense);
        match dense.lu() {
            Ok(f) => {
                self.factors = Some(f);
                self.ops = dense_lu_ops(n);
                self.factors_done += 1;
                self.columns_done += n as u64;
                Ok(())
            }
            Err(e) => {
                self.factors = None;
                Err(e)
            }
        }
    }

    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let f = self.factors.as_ref().ok_or_else(|| {
            NumericsError::InvalidInput("solve_factored called before factor".into())
        })?;
        let n = self.buffer.as_ref().map_or(0, Matrix::rows);
        if b.len() != n {
            return Err(NumericsError::InvalidInput(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        Ok(f.solve(b))
    }

    fn factor_ops(&self) -> u64 {
        self.ops
    }

    fn factor_stats(&self) -> FactorPathStats {
        // Every dense factorisation is a full pivot-searching one.
        FactorPathStats {
            symbolic_factorizations: self.factors_done,
            columns_recomputed: self.columns_done,
            columns_total: self.columns_done,
            ..FactorPathStats::default()
        }
    }
}

/// Scalar types the sparse LU elimination is generic over.
///
/// The factorisation algorithm only needs field arithmetic plus a real
/// magnitude for pivot decisions, so one implementation serves both the
/// real Newton Jacobians (`f64`, via [`SparseLuSolver`]) and the complex
/// AC small-signal systems `G + jωC` ([`Complex`], via [`SparseLu`]).
pub trait LuScalar:
    Copy
    + std::fmt::Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;

    /// Magnitude used for pivot eligibility and collapse detection.
    fn modulus(self) -> f64;

    /// `true` when the value has no NaN or infinite component.
    fn is_finite(self) -> bool;
}

impl LuScalar for f64 {
    const ZERO: Self = 0.0;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

impl LuScalar for Complex {
    const ZERO: Self = Complex::ZERO;

    fn modulus(self) -> f64 {
        self.abs()
    }

    fn is_finite(self) -> bool {
        Complex::is_finite(self)
    }
}

/// Scalar-generic sparse LU with a cached elimination plan, operating on
/// a shared [`SparsityPattern`] plus a value slice in pattern slot
/// order.
///
/// The first factorisation of a pattern runs a full right-looking
/// elimination with Markowitz-style threshold pivoting (prefer short
/// rows among candidates whose pivot magnitude is within
/// `PIVOT_THRESHOLD` of the column maximum) and records the pivot order
/// plus the complete fill-in pattern. Later factorisations of the *same*
/// pattern replay the elimination over the frozen structure with a dense
/// scatter workspace — no pivot search, no pattern discovery, no
/// allocation. If a frozen pivot collapses numerically the solver
/// transparently redoes the pivoting factorisation.
///
/// For real systems assembled as [`CsrMatrix`], use the
/// [`SparseLuSolver`] wrapper (which implements [`LinearSolver`]); use
/// this type directly for complex-valued systems such as AC sweeps,
/// where one frozen pattern is re-valued per frequency point:
///
/// ```
/// use cntfet_numerics::complex::Complex;
/// use cntfet_numerics::sparse::{SparseLu, TripletMatrix};
/// use std::sync::Arc;
///
/// // Pattern from a real assembly; values re-valued per frequency.
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 1, 1.0);
/// let pattern = Arc::clone(t.to_csr().pattern());
/// let mut lu = SparseLu::<Complex>::new();
/// for omega in [1.0, 10.0, 100.0] {
///     let vals = vec![Complex::new(1.0, omega), Complex::new(2.0, omega)];
///     lu.factor(&pattern, &vals).unwrap();
///     let x = lu.solve_factored(&[Complex::ONE, Complex::ONE]).unwrap();
///     assert!((x[0] - Complex::ONE / Complex::new(1.0, omega)).abs() < 1e-15);
/// }
/// assert_eq!(lu.symbolic_factor_count(), 1); // ordered once,
/// assert_eq!(lu.refactor_count(), 2); // re-valued afterwards
/// ```
#[derive(Debug)]
pub struct SparseLu<T> {
    symbolic: Option<Symbolic>,
    f_values: Vec<T>,
    diag: Vec<T>,
    work: Vec<T>,
    /// Dirty-step flags of the partial-refactorization scan; all false
    /// between calls.
    step_flag: Vec<bool>,
    ordering: FillOrdering,
    ops: u64,
    symbolic_factors: u64,
    refactors: u64,
    partial_refactors: u64,
    columns_recomputed: u64,
    columns_total: u64,
}

impl<T> Default for SparseLu<T> {
    fn default() -> Self {
        SparseLu {
            symbolic: None,
            f_values: Vec::new(),
            diag: Vec::new(),
            work: Vec::new(),
            step_flag: Vec::new(),
            ordering: FillOrdering::default(),
            ops: 0,
            symbolic_factors: 0,
            refactors: 0,
            partial_refactors: 0,
            columns_recomputed: 0,
            columns_total: 0,
        }
    }
}

#[derive(Debug)]
struct Symbolic {
    pattern: Arc<SparsityPattern>,
    /// `perm[k]` = original row index used as the pivot of step `k`.
    perm: Vec<usize>,
    /// `col_order[k]` = original column eliminated at step `k` (the
    /// fill-reducing pre-ordering chosen via [`FillOrdering`] when the
    /// plan was frozen).
    col_order: Vec<usize>,
    /// Factor storage structure, per original row: full fill-in
    /// pattern. Column indices are *virtual* (elimination-order) —
    /// `col_order` maps them back.
    f_row_ptr: Vec<usize>,
    f_col_idx: Vec<usize>,
    /// First slot of row `r`'s U part (its pivot column `pos[r]`).
    u_start: Vec<usize>,
    /// Slot of the pivot entry (`perm[k]`, `k`) per step.
    diag_slot: Vec<usize>,
    /// Maps each slot of the A pattern to its slot in factor storage.
    a_to_f: Vec<usize>,
    /// Inverse of `perm`: the elimination step at which each original
    /// row is the pivot.
    row_step: Vec<usize>,
    /// Original row of each A-pattern slot (changed slot → dirty step).
    slot_row: Vec<usize>,
    /// CSR over steps: `dep_steps[dep_ptr[k]..dep_ptr[k + 1]]` are the
    /// steps whose row carries an L entry in virtual column `k` — the
    /// steps whose elimination reads step `k`'s U row and pivot, i.e.
    /// the out-edges of the elimination DAG used by the partial
    /// refactorization's dirtiness propagation. Dependents always have
    /// step index > `k`, so one ascending flag scan settles the set.
    dep_ptr: Vec<usize>,
    dep_steps: Vec<usize>,
}

/// A finished right-looking elimination before it is compiled into
/// frozen factor storage: the [`SparseLu`] ordering-selection layer
/// runs one per candidate ordering and installs the cheapest.
struct Elimination<T> {
    col_order: Vec<usize>,
    col_rank: Vec<usize>,
    perm: Vec<usize>,
    rows: Vec<Vec<(usize, T)>>,
    ops: u64,
}

impl<T> Elimination<T> {
    /// Total recorded L+U entries (the fill the plan commits to).
    fn fill_nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

/// Relative magnitude a candidate pivot must reach (vs the column
/// maximum) to be eligible for the Markowitz tie-break.
const PIVOT_THRESHOLD: f64 = 1e-3;

/// A frozen pivot smaller than this fraction of its row's U-part maximum
/// triggers a fresh pivoting factorisation.
const REPIVOT_RATIO: f64 = 1e-12;

impl<T: LuScalar> SparseLu<T> {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of full (pivot-searching) factorisations performed.
    pub fn symbolic_factor_count(&self) -> u64 {
        self.symbolic_factors
    }

    /// Number of fast pattern-replay factorisations performed.
    pub fn refactor_count(&self) -> u64 {
        self.refactors
    }

    /// Number of partial (changed-slot) refactorisations performed.
    pub fn partial_refactor_count(&self) -> u64 {
        self.partial_refactors
    }

    /// Cumulative factorisation-path statistics.
    pub fn factor_path_stats(&self) -> FactorPathStats {
        FactorPathStats {
            symbolic_factorizations: self.symbolic_factors,
            replay_refactorizations: self.refactors,
            partial_refactorizations: self.partial_refactors,
            columns_recomputed: self.columns_recomputed,
            columns_total: self.columns_total,
        }
    }

    /// The fill-reducing ordering used when freezing a new elimination
    /// plan ([`FillOrdering::Auto`] by default).
    pub fn ordering(&self) -> FillOrdering {
        self.ordering
    }

    /// Sets the fill-reducing ordering. Takes effect at the next full
    /// pivoting factorisation; an already-frozen plan keeps replaying.
    pub fn set_ordering(&mut self, ordering: FillOrdering) {
        self.ordering = ordering;
    }

    /// Multiply–accumulate + divide count of the most recent
    /// factorisation.
    pub fn factor_ops(&self) -> u64 {
        self.ops
    }

    /// Number of stored L+U entries of the current elimination plan
    /// (0 before the first factorisation).
    pub fn factor_nnz(&self) -> usize {
        self.symbolic.as_ref().map_or(0, |s| s.f_col_idx.len())
    }

    /// Factors the matrix given by `pattern` plus `values` (in pattern
    /// slot order), replacing any previously stored factors. The same
    /// pattern as the last call takes the fast elimination-replay path;
    /// a failed factorisation discards the previous factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for (numerically)
    /// singular input and [`NumericsError::InvalidInput`] for non-square
    /// input or a value slice that does not match the pattern.
    pub fn factor(
        &mut self,
        pattern: &Arc<SparsityPattern>,
        values: &[T],
    ) -> Result<(), NumericsError> {
        if pattern.rows() != pattern.cols() {
            return Err(NumericsError::InvalidInput(format!(
                "factor requires a square matrix, got {}x{}",
                pattern.rows(),
                pattern.cols()
            )));
        }
        if values.len() != pattern.nnz() {
            return Err(NumericsError::InvalidInput(format!(
                "value slice length {} does not match pattern nnz {}",
                values.len(),
                pattern.nnz()
            )));
        }
        let same_pattern = self
            .symbolic
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(&s.pattern, pattern) || *s.pattern == **pattern);
        if same_pattern {
            match self.refactor(values) {
                Ok(()) => return Ok(()),
                // A frozen pivot collapsed; fall through and re-pivot.
                Err(NumericsError::SingularMatrix { .. }) => {}
                Err(e) => {
                    self.symbolic = None;
                    return Err(e);
                }
            }
        }
        let result = self.factor_with_pivoting(pattern, values);
        if result.is_err() {
            // A failed refactor has already overwritten parts of the
            // factor storage; never let solve_factored read that
            // half-updated state as if it were the previous factors.
            self.symbolic = None;
        }
        result
    }

    /// Factors under the partial-refactorization contract (module
    /// invariant 4): every pattern slot *not* in `changed_slots` must be
    /// bitwise identical to the previous successful factorisation of
    /// this pattern. Only the elimination steps reachable from the
    /// changed slots through the frozen elimination DAG are replayed;
    /// the result is bitwise identical to a full [`SparseLu::factor`].
    /// When no plan for this pattern is frozen — or a replayed pivot
    /// collapses — the call transparently runs the full pivoting
    /// factorisation, exactly like `factor`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] for (numerically)
    /// singular input and [`NumericsError::InvalidInput`] for non-square
    /// input, a value slice that does not match the pattern, or a
    /// changed slot outside the pattern.
    pub fn factor_partial(
        &mut self,
        pattern: &Arc<SparsityPattern>,
        values: &[T],
        changed_slots: &[usize],
    ) -> Result<(), NumericsError> {
        if pattern.rows() != pattern.cols() {
            return Err(NumericsError::InvalidInput(format!(
                "factor requires a square matrix, got {}x{}",
                pattern.rows(),
                pattern.cols()
            )));
        }
        if values.len() != pattern.nnz() {
            return Err(NumericsError::InvalidInput(format!(
                "value slice length {} does not match pattern nnz {}",
                values.len(),
                pattern.nnz()
            )));
        }
        if let Some(&bad) = changed_slots.iter().find(|&&s| s >= values.len()) {
            return Err(NumericsError::InvalidInput(format!(
                "changed slot {bad} is outside the pattern's {} slots",
                values.len()
            )));
        }
        let same_pattern = self
            .symbolic
            .as_ref()
            .is_some_and(|s| Arc::ptr_eq(&s.pattern, pattern) || *s.pattern == **pattern);
        if same_pattern {
            match self.refactor_partial(values, changed_slots) {
                Ok(()) => return Ok(()),
                // A frozen pivot collapsed; fall through and re-pivot.
                Err(NumericsError::SingularMatrix { .. }) => {}
                Err(e) => {
                    self.symbolic = None;
                    return Err(e);
                }
            }
        }
        let result = self.factor_with_pivoting(pattern, values);
        if result.is_err() {
            self.symbolic = None;
        }
        result
    }

    /// Full factorisation with pivot search; runs the symbolic
    /// elimination under the configured [`FillOrdering`] (both
    /// candidates for [`FillOrdering::Auto`]) and freezes the cheapest
    /// plan for later replays.
    fn factor_with_pivoting(
        &mut self,
        pattern: &Arc<SparsityPattern>,
        values: &[T],
    ) -> Result<(), NumericsError> {
        let plan = match self.ordering {
            FillOrdering::AscendingDegree => {
                Self::eliminate(pattern, values, ascending_degree_order(pattern))?
            }
            FillOrdering::AmdBtf => Self::eliminate(pattern, values, btf_amd_order(pattern))?,
            FillOrdering::Auto => {
                let st = Self::eliminate(pattern, values, ascending_degree_order(pattern));
                let amd = Self::eliminate(pattern, values, btf_amd_order(pattern));
                match (st, amd) {
                    (Ok(a), Ok(b)) => {
                        if b.fill_nnz() < a.fill_nnz() {
                            b
                        } else {
                            a
                        }
                    }
                    (Ok(a), Err(_)) => a,
                    (Err(_), Ok(b)) => b,
                    (Err(e), Err(_)) => return Err(e),
                }
            }
        };
        self.install_plan(pattern, plan);
        Ok(())
    }

    /// Right-looking elimination with Markowitz-style threshold
    /// pivoting under the given column pre-ordering; pure (no solver
    /// state touched) so the ordering-selection layer can race
    /// candidates.
    fn eliminate(
        pattern: &Arc<SparsityPattern>,
        values: &[T],
        col_order: Vec<usize>,
    ) -> Result<Elimination<T>, NumericsError> {
        let n = pattern.rows();
        let mut col_rank = vec![0usize; n];
        for (k, &c) in col_order.iter().enumerate() {
            col_rank[c] = k;
        }
        // Working rows as (virtual column, value) vectors sorted by
        // virtual (elimination-order) column.
        let mut rows: Vec<Vec<(usize, T)>> = (0..n)
            .map(|r| {
                let lo = pattern.row_ptr[r];
                let hi = pattern.row_ptr[r + 1];
                let mut row: Vec<(usize, T)> = (lo..hi)
                    .map(|i| (col_rank[pattern.col_idx[i]], values[i]))
                    .collect();
                row.sort_by_key(|e| e.0);
                row
            })
            .collect();
        // Rows holding a structural entry in each column; fill creation
        // appends, so each (row, column) pair appears at most once.
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (r, row) in rows.iter().enumerate() {
            for &(c, _) in row {
                col_rows[c].push(r);
            }
        }
        let mut pivoted = vec![false; n];
        let mut perm = Vec::with_capacity(n);
        let mut ops: u64 = 0;
        for k in 0..n {
            // Candidate scan: largest magnitude in column k.
            let mut maxabs = 0.0f64;
            for &r in &col_rows[k] {
                if pivoted[r] {
                    continue;
                }
                let i = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                maxabs = maxabs.max(rows[r][i].1.modulus());
            }
            if maxabs == 0.0 || !maxabs.is_finite() {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            // Markowitz-style: among magnitude-eligible rows take the
            // shortest (least prospective fill), break ties by magnitude.
            let mut best: Option<(usize, usize, f64)> = None;
            for &r in &col_rows[k] {
                if pivoted[r] {
                    continue;
                }
                let i = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                let mag = rows[r][i].1.modulus();
                if mag >= PIVOT_THRESHOLD * maxabs {
                    let len = rows[r].len();
                    let better = best
                        .is_none_or(|(_, blen, bmag)| len < blen || (len == blen && mag > bmag));
                    if better {
                        best = Some((r, len, mag));
                    }
                }
            }
            let (prow, _, _) = best.expect("maxabs > 0 guarantees an eligible row");
            pivoted[prow] = true;
            perm.push(prow);
            let pstart = rows[prow]
                .binary_search_by_key(&k, |e| e.0)
                .expect("pivot entry");
            let pivot_val = rows[prow][pstart].1;
            // Clone the pivot row's U tail once per step (merge source).
            let utail: Vec<(usize, T)> = rows[prow][pstart + 1..].to_vec();
            let candidates: Vec<usize> = col_rows[k]
                .iter()
                .copied()
                .filter(|&r| !pivoted[r])
                .collect();
            for r in candidates {
                let ei = rows[r]
                    .binary_search_by_key(&k, |e| e.0)
                    .expect("structural entry");
                let m = rows[r][ei].1 / pivot_val;
                rows[r][ei].1 = m; // becomes the stored L multiplier
                ops += 1;
                // rows[r][ei+1..] -= m * utail  (sorted two-way merge;
                // performed even for m == 0 so the recorded pattern stays
                // valid for any values with this structure).
                let old_tail: Vec<(usize, T)> = rows[r].split_off(ei + 1);
                let mut oi = 0;
                let mut ui = 0;
                while oi < old_tail.len() || ui < utail.len() {
                    let take_old =
                        ui >= utail.len() || (oi < old_tail.len() && old_tail[oi].0 < utail[ui].0);
                    let take_both =
                        oi < old_tail.len() && ui < utail.len() && old_tail[oi].0 == utail[ui].0;
                    if take_both {
                        rows[r].push((old_tail[oi].0, old_tail[oi].1 - m * utail[ui].1));
                        oi += 1;
                        ui += 1;
                    } else if take_old {
                        rows[r].push(old_tail[oi]);
                        oi += 1;
                    } else {
                        // Fill-in: new structural entry.
                        rows[r].push((utail[ui].0, -m * utail[ui].1));
                        col_rows[utail[ui].0].push(r);
                        ui += 1;
                    }
                }
                ops += utail.len() as u64;
            }
        }
        Ok(Elimination {
            col_order,
            col_rank,
            perm,
            rows,
            ops,
        })
    }

    /// Compiles a finished elimination into frozen factor storage and
    /// installs it as the active plan.
    fn install_plan(&mut self, pattern: &Arc<SparsityPattern>, plan: Elimination<T>) {
        let Elimination {
            col_order,
            col_rank,
            perm,
            rows,
            ops,
        } = plan;
        let n = pattern.rows();
        let mut pos = vec![0usize; n];
        for (k, &r) in perm.iter().enumerate() {
            pos[r] = k;
        }
        let mut f_row_ptr = Vec::with_capacity(n + 1);
        let mut f_col_idx = Vec::new();
        let mut f_values = Vec::new();
        let mut u_start = vec![0usize; n];
        f_row_ptr.push(0);
        for (r, row) in rows.iter().enumerate() {
            let local_u = row
                .binary_search_by_key(&pos[r], |e| e.0)
                .expect("pivot entry survives elimination");
            u_start[r] = f_col_idx.len() + local_u;
            for &(c, v) in row {
                f_col_idx.push(c);
                f_values.push(v);
            }
            f_row_ptr.push(f_col_idx.len());
        }
        let diag_slot: Vec<usize> = (0..n).map(|k| u_start[perm[k]]).collect();
        let diag: Vec<T> = diag_slot.iter().map(|&s| f_values[s]).collect();
        // Map every slot of A into factor storage (A ⊆ fill pattern).
        let mut a_to_f = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            let flo = f_row_ptr[r];
            let fhi = f_row_ptr[r + 1];
            for &c in pattern.row_cols(r) {
                let i = f_col_idx[flo..fhi]
                    .binary_search(&col_rank[c])
                    .expect("A entry is part of the fill pattern");
                a_to_f.push(flo + i);
            }
        }
        // Row of each A-pattern slot, for changed-slot → dirty-step
        // marking, and the elimination DAG's out-edges (dependents of
        // each step) for the partial refactorization's propagation.
        let mut slot_row = Vec::with_capacity(pattern.nnz());
        for r in 0..n {
            for _ in pattern.row_range(r) {
                slot_row.push(r);
            }
        }
        let mut dep_ptr = vec![0usize; n + 1];
        for r in 0..n {
            for i in f_row_ptr[r]..u_start[r] {
                dep_ptr[f_col_idx[i] + 1] += 1;
            }
        }
        for k in 0..n {
            dep_ptr[k + 1] += dep_ptr[k];
        }
        let mut cursor = dep_ptr.clone();
        let mut dep_steps = vec![0usize; dep_ptr[n]];
        for (r, &step) in pos.iter().enumerate() {
            for &c in &f_col_idx[f_row_ptr[r]..u_start[r]] {
                dep_steps[cursor[c]] = step;
                cursor[c] += 1;
            }
        }
        self.symbolic = Some(Symbolic {
            pattern: Arc::clone(pattern),
            perm,
            col_order,
            f_row_ptr,
            f_col_idx,
            u_start,
            diag_slot,
            a_to_f,
            row_step: pos,
            slot_row,
            dep_ptr,
            dep_steps,
        });
        self.f_values = f_values;
        self.diag = diag;
        self.work = vec![T::ZERO; n];
        self.step_flag = vec![false; n];
        self.ops = ops;
        self.symbolic_factors += 1;
        self.columns_recomputed += n as u64;
        self.columns_total += n as u64;
    }

    /// Replays the recorded elimination over new values. Returns
    /// `Err(SingularMatrix)` when a frozen pivot collapses — the caller
    /// falls back to a fresh pivoting factorisation.
    fn refactor(&mut self, values: &[T]) -> Result<(), NumericsError> {
        let s = self.symbolic.as_ref().expect("refactor requires symbolic");
        let n = s.perm.len();
        self.f_values.iter_mut().for_each(|v| *v = T::ZERO);
        for (slot, &v) in values.iter().enumerate() {
            self.f_values[s.a_to_f[slot]] += v;
        }
        let mut ops: u64 = 0;
        for k in 0..n {
            let r = s.perm[k];
            let lo = s.f_row_ptr[r];
            let hi = s.f_row_ptr[r + 1];
            // Scatter the row into the dense workspace.
            for i in lo..hi {
                self.work[s.f_col_idx[i]] = self.f_values[i];
            }
            // Eliminate the L part in ascending column (= step) order.
            for i in lo..s.u_start[r] {
                let c = s.f_col_idx[i];
                let m = self.work[c] / self.diag[c];
                self.work[c] = m;
                ops += 1;
                let pr = s.perm[c];
                let ud = s.diag_slot[c];
                let pend = s.f_row_ptr[pr + 1];
                for ui in (ud + 1)..pend {
                    self.work[s.f_col_idx[ui]] -= m * self.f_values[ui];
                }
                ops += (pend - ud - 1) as u64;
            }
            let pivot = self.work[k];
            let mut umax = 0.0f64;
            for i in s.u_start[r]..hi {
                umax = umax.max(self.work[s.f_col_idx[i]].modulus());
            }
            // Gather back and clear the workspace.
            for i in lo..hi {
                let c = s.f_col_idx[i];
                self.f_values[i] = self.work[c];
                self.work[c] = T::ZERO;
            }
            if !pivot.is_finite() || pivot.modulus() < REPIVOT_RATIO * umax || pivot == T::ZERO {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            self.diag[k] = pivot;
        }
        self.ops = ops;
        self.refactors += 1;
        self.columns_recomputed += n as u64;
        self.columns_total += n as u64;
        Ok(())
    }

    /// Replays only the elimination steps affected by `changed_slots`
    /// (module invariant 4): the step of each changed slot's row is
    /// marked dirty, and dirtiness propagates to every step whose L part
    /// reads a dirty step's U row. Because a step's dependents always
    /// have larger step indices, a single ascending scan over the dirty
    /// flags settles the affected set; clean steps keep their L/U rows
    /// and pivots bitwise, so the result equals a full replay bitwise.
    /// Returns `Err(SingularMatrix)` when a replayed pivot collapses —
    /// the caller falls back to a fresh pivoting factorisation.
    fn refactor_partial(&mut self, values: &[T], changed: &[usize]) -> Result<(), NumericsError> {
        let s = self
            .symbolic
            .as_ref()
            .expect("refactor_partial requires symbolic");
        let n = s.perm.len();
        let mut first = n;
        for &slot in changed {
            let k = s.row_step[s.slot_row[slot]];
            if !self.step_flag[k] {
                self.step_flag[k] = true;
                if k < first {
                    first = k;
                }
            }
        }
        let mut ops: u64 = 0;
        let mut replayed: u64 = 0;
        let mut collapsed: Option<usize> = None;
        for k in first..n {
            if !self.step_flag[k] {
                continue;
            }
            self.step_flag[k] = false;
            if collapsed.is_some() {
                // Only draining the remaining flags after an abort.
                continue;
            }
            let r = s.perm[k];
            let lo = s.f_row_ptr[r];
            let hi = s.f_row_ptr[r + 1];
            // Reset this row to its A values; clean rows keep their
            // already-eliminated factors untouched.
            for i in lo..hi {
                self.f_values[i] = T::ZERO;
            }
            for slot in s.pattern.row_range(r) {
                self.f_values[s.a_to_f[slot]] += values[slot];
            }
            // From here the arithmetic is identical to `refactor`.
            for i in lo..hi {
                self.work[s.f_col_idx[i]] = self.f_values[i];
            }
            for i in lo..s.u_start[r] {
                let c = s.f_col_idx[i];
                let m = self.work[c] / self.diag[c];
                self.work[c] = m;
                ops += 1;
                let pr = s.perm[c];
                let ud = s.diag_slot[c];
                let pend = s.f_row_ptr[pr + 1];
                for ui in (ud + 1)..pend {
                    self.work[s.f_col_idx[ui]] -= m * self.f_values[ui];
                }
                ops += (pend - ud - 1) as u64;
            }
            let pivot = self.work[k];
            let mut umax = 0.0f64;
            for i in s.u_start[r]..hi {
                umax = umax.max(self.work[s.f_col_idx[i]].modulus());
            }
            for i in lo..hi {
                let c = s.f_col_idx[i];
                self.f_values[i] = self.work[c];
                self.work[c] = T::ZERO;
            }
            if !pivot.is_finite() || pivot.modulus() < REPIVOT_RATIO * umax || pivot == T::ZERO {
                collapsed = Some(k);
                continue;
            }
            self.diag[k] = pivot;
            replayed += 1;
            // This step's U row and pivot changed: every step reading
            // them must replay too. Dependents are strictly later
            // steps, so this scan still visits them.
            for &d in &s.dep_steps[s.dep_ptr[k]..s.dep_ptr[k + 1]] {
                self.step_flag[d] = true;
            }
        }
        if let Some(k) = collapsed {
            return Err(NumericsError::SingularMatrix { pivot: k });
        }
        self.ops = ops;
        self.partial_refactors += 1;
        self.columns_recomputed += replayed;
        self.columns_total += n as u64;
        Ok(())
    }

    /// Solves `A x = b` with the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] when there are no valid
    /// factors (never factored, or the last factor failed) or `b` has
    /// the wrong length.
    pub fn solve_factored(&self, b: &[T]) -> Result<Vec<T>, NumericsError> {
        let s = self.symbolic.as_ref().ok_or_else(|| {
            NumericsError::InvalidInput("solve_factored called before factor".into())
        })?;
        let n = s.perm.len();
        if b.len() != n {
            return Err(NumericsError::InvalidInput(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        // Forward: L y = P b, in pivot order (L columns are steps).
        let mut y = vec![T::ZERO; n];
        for (k, &r) in s.perm.iter().enumerate() {
            let mut acc = b[r];
            for i in s.f_row_ptr[r]..s.u_start[r] {
                acc -= self.f_values[i] * y[s.f_col_idx[i]];
            }
            y[k] = acc;
        }
        // Backward: U xv = y in virtual column space.
        let mut xv = vec![T::ZERO; n];
        for k in (0..n).rev() {
            let r = s.perm[k];
            let mut acc = y[k];
            for i in (s.diag_slot[k] + 1)..s.f_row_ptr[r + 1] {
                acc -= self.f_values[i] * xv[s.f_col_idx[i]];
            }
            xv[k] = acc / self.diag[k];
        }
        // Undo the static column ordering.
        let mut x = vec![T::ZERO; n];
        for (k, &c) in s.col_order.iter().enumerate() {
            x[c] = xv[k];
        }
        Ok(x)
    }
}

/// The real-valued sparse LU behind the circuit engine's sparse Newton
/// solves: a thin [`LinearSolver`] adapter over [`SparseLu<f64>`] that
/// factors assembled [`CsrMatrix`] Jacobians. See [`SparseLu`] for the
/// elimination-plan caching semantics.
#[derive(Debug, Default)]
pub struct SparseLuSolver {
    core: SparseLu<f64>,
}

impl SparseLuSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of full (pivot-searching) factorisations performed.
    pub fn symbolic_factor_count(&self) -> u64 {
        self.core.symbolic_factor_count()
    }

    /// Number of fast pattern-replay factorisations performed.
    pub fn refactor_count(&self) -> u64 {
        self.core.refactor_count()
    }

    /// Number of partial (changed-slot) refactorisations performed.
    pub fn partial_refactor_count(&self) -> u64 {
        self.core.partial_refactor_count()
    }

    /// Number of stored L+U entries of the current elimination plan
    /// (0 before the first factorisation).
    pub fn factor_nnz(&self) -> usize {
        self.core.factor_nnz()
    }

    /// The fill-reducing ordering used for new elimination plans.
    pub fn ordering(&self) -> FillOrdering {
        self.core.ordering()
    }

    /// Sets the fill-reducing ordering for future elimination plans.
    pub fn set_ordering(&mut self, ordering: FillOrdering) {
        self.core.set_ordering(ordering);
    }
}

impl LinearSolver for SparseLuSolver {
    fn name(&self) -> &'static str {
        "sparse-lu"
    }

    fn factor(&mut self, a: &CsrMatrix) -> Result<(), NumericsError> {
        self.core.factor(a.pattern(), a.values())
    }

    fn factor_partial(
        &mut self,
        a: &CsrMatrix,
        changed_slots: &[usize],
    ) -> Result<(), NumericsError> {
        self.core
            .factor_partial(a.pattern(), a.values(), changed_slots)
    }

    fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        self.core.solve_factored(b)
    }

    fn factor_ops(&self) -> u64 {
        self.core.factor_ops()
    }

    fn factor_stats(&self) -> FactorPathStats {
        self.core.factor_path_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr_from_dense(rows: &[&[f64]]) -> CsrMatrix {
        let mut t = TripletMatrix::new(rows.len(), rows[0].len());
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(r, c, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn triplets_merge_duplicates_in_push_order() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(0, 0, 0.5);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn zero_triplet_reserves_a_slot() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(1, 0, 3.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.pattern().slot(0, 0), Some(0));
        assert_eq!(m.pattern().slot(0, 1), None);
    }

    #[test]
    fn structural_rank_full_for_diagonal() {
        let m = csr_from_dense(&[&[2.0, 1.0, 0.0], &[0.0, 3.0, 0.0], &[1.0, 0.0, 4.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 3);
        assert!(sr.is_full());
        assert!(sr.unmatched_rows.is_empty() && sr.unmatched_cols.is_empty());
    }

    #[test]
    fn structural_rank_ignores_reserved_zero_slots() {
        // A reserved-but-zero diagonal (gmin slot at gmin = 0) must not
        // count as a structural entry: column 2 is only "covered" by a
        // placeholder, so the matrix is structurally singular.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 2, 0.0);
        let m = t.to_csr();
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows, vec![2]);
        assert_eq!(sr.unmatched_cols, vec![2]);
    }

    #[test]
    fn structural_rank_finds_augmenting_paths() {
        // Row 0 grabs column 0 first; row 2 can only use column 0, so
        // the matching must reroute row 0 to column 1 — rank 3 needs an
        // augmenting path, not just greedy assignment.
        let m = csr_from_dense(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 0.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 3);
        assert!(sr.is_full());
    }

    #[test]
    fn structural_rank_reports_deficient_block() {
        // Rows 1 and 2 both depend only on column 1: one of them must
        // go unmatched, as must one of columns {0 is fine} — column 2
        // is untouched entirely.
        let m = csr_from_dense(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 1.0, 0.0]]);
        let sr = structural_rank(&m);
        assert_eq!(sr.rank, 2);
        assert_eq!(sr.unmatched_rows.len(), 1);
        assert_eq!(sr.unmatched_cols, vec![2]);
    }

    #[test]
    fn csr_mul_vec_matches_dense() {
        let a = csr_from_dense(&[&[2.0, 0.0, 1.0], &[0.0, 3.0, 0.0], &[1.0, 0.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![5.0, 6.0, 13.0]);
        let d = a.to_dense();
        assert_eq!(d.mul_vec(&[1.0, 2.0, 3.0]), y);
    }

    #[test]
    fn assembler_records_then_reuses_slots() {
        let mut asm = PatternAssembler::new(2, 2);
        assert!(asm.is_recording());
        asm.begin();
        asm.add(0, 0, 2.0);
        asm.add(0, 1, -1.0);
        asm.add(1, 1, 3.0);
        let nnz = asm.finish().nnz();
        assert_eq!(nnz, 3);
        assert_eq!(asm.pattern_builds(), 1);
        assert!(!asm.is_recording());
        // Second cycle: same structure, new values, same pattern object.
        let p1 = Arc::clone(asm.matrix().unwrap().pattern());
        asm.begin();
        asm.add(0, 0, 5.0);
        asm.add(1, 1, 1.0);
        let m = asm.finish();
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 1), 0.0, "unwritten slot is zeroed, not stale");
        assert!(Arc::ptr_eq(&p1, m.pattern()));
        assert_eq!(asm.pattern_builds(), 1);
    }

    #[test]
    #[should_panic(expected = "not in the cached sparsity pattern")]
    fn assembler_rejects_out_of_pattern_writes() {
        let mut asm = PatternAssembler::new(2, 2);
        asm.begin();
        asm.add(0, 0, 1.0);
        asm.finish();
        asm.begin();
        asm.add(1, 0, 1.0);
    }

    #[test]
    fn assembler_invalidate_returns_to_recording() {
        let mut asm = PatternAssembler::new(2, 2);
        asm.begin();
        asm.add(0, 0, 1.0);
        asm.finish();
        asm.invalidate();
        assert!(asm.is_recording());
        asm.begin();
        asm.add(1, 0, 1.0);
        asm.add(0, 0, 1.0);
        asm.add(1, 1, 1.0);
        assert_eq!(asm.finish().nnz(), 3);
        assert_eq!(asm.pattern_builds(), 2);
    }

    fn solve_both(a: &CsrMatrix, b: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        let xd = dense.solve(a, b).expect("dense solve");
        let xs = sparse.solve(a, b).expect("sparse solve");
        (xd, xs)
    }

    #[test]
    fn solvers_agree_on_small_system() {
        let a = csr_from_dense(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]);
        let (xd, xs) = solve_both(&a, &[1.0, -2.0, 0.0]);
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-12, "{d} vs {s}");
        }
        assert!((xs[0] - 1.0).abs() < 1e-12);
        assert!((xs[1] + 2.0).abs() < 1e-12);
        assert!((xs[2] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_handles_zero_diagonal_mna_structure() {
        // Voltage-source-like block: the (2,2) diagonal is structurally
        // present but numerically zero, so pivoting is mandatory.
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1e-3);
        t.push(0, 2, 1.0);
        t.push(1, 1, 2e-3);
        t.push(2, 0, 1.0);
        t.push(2, 2, 0.0);
        let a = t.to_csr();
        let mut sparse = SparseLuSolver::new();
        let x = sparse.solve(&a, &[0.0, 2e-3, 5.0]).expect("solve");
        assert!((x[0] - 5.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] + 5e-3).abs() < 1e-12);
    }

    #[test]
    fn refactor_reuses_pattern_and_stays_correct() {
        let mut asm = PatternAssembler::new(3, 3);
        let stamp = |asm: &mut PatternAssembler, g: f64| {
            asm.begin();
            asm.add(0, 0, g);
            asm.add(0, 1, -g);
            asm.add(1, 0, -g);
            asm.add(1, 1, g + 1e-3);
            asm.add(1, 2, -1e-3);
            asm.add(2, 1, -1e-3);
            asm.add(2, 2, 2e-3);
        };
        let mut sparse = SparseLuSolver::new();
        stamp(&mut asm, 1.0);
        sparse.factor(asm.finish()).expect("first factor");
        assert_eq!(sparse.symbolic_factor_count(), 1);
        stamp(&mut asm, 2.5);
        let a = asm.finish();
        sparse.factor(a).expect("refactor");
        assert_eq!(sparse.symbolic_factor_count(), 1, "pattern reused");
        assert_eq!(sparse.refactor_count(), 1);
        let b = [1.0, 0.0, -1.0];
        let x = sparse.solve_factored(&b).expect("solve");
        let mut dense = DenseLuSolver::new();
        let xd = dense.solve(a, &b).expect("dense");
        for (s, d) in x.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12, "{s} vs {d}");
        }
    }

    #[test]
    fn singular_matrix_is_reported_by_both() {
        let a = csr_from_dense(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        assert!(matches!(
            dense.solve(&a, &[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(matches!(
            sparse.solve(&a, &[1.0, 2.0]),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        let a = t.to_csr();
        let mut sparse = SparseLuSolver::new();
        assert!(matches!(
            sparse.factor(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn tridiagonal_sparse_beats_dense_op_count() {
        let n = 64;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csr();
        let mut dense = DenseLuSolver::new();
        let mut sparse = SparseLuSolver::new();
        dense.factor(&a).expect("dense factor");
        sparse.factor(&a).expect("sparse factor");
        assert!(
            sparse.factor_ops() < dense.factor_ops() / 100,
            "tridiagonal LU should be ~O(n): sparse {} vs dense {}",
            sparse.factor_ops(),
            dense.factor_ops()
        );
        // Same count when replaying the pattern.
        sparse.factor(&a).expect("refactor");
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let xs = sparse.solve_factored(&b).expect("solve");
        let xd = dense.solve_factored(&b).expect("solve");
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn complex_lu_matches_hand_solution() {
        // (1+j)·x0 + 1·x1 = 1 ;  1·x0 + (1−j)·x1 = j
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(0, 1, 0.0);
        t.push(1, 0, 0.0);
        t.push(1, 1, 0.0);
        let pattern = Arc::clone(t.to_csr().pattern());
        let vals = [
            Complex::new(1.0, 1.0),
            Complex::ONE,
            Complex::ONE,
            Complex::new(1.0, -1.0),
        ];
        let mut lu = SparseLu::<Complex>::new();
        lu.factor(&pattern, &vals).expect("complex factor");
        let x = lu
            .solve_factored(&[Complex::ONE, Complex::I])
            .expect("complex solve");
        // Determinant = (1+j)(1−j) − 1 = 1; Cramer gives
        // x0 = (1−j) − j = 1 − 2j, x1 = (1+j)j − 1 = −2 + j... recompute:
        // x0 = (1·(1−j) − 1·j) / 1 = 1 − 2j
        // x1 = ((1+j)·j − 1·1) / 1 = −2 + j
        assert!((x[0] - Complex::new(1.0, -2.0)).abs() < 1e-14, "{}", x[0]);
        assert!((x[1] - Complex::new(-2.0, 1.0)).abs() < 1e-14, "{}", x[1]);
        // Residual check: A x == b.
        let b0 = vals[0] * x[0] + vals[1] * x[1];
        let b1 = vals[2] * x[0] + vals[3] * x[1];
        assert!((b0 - Complex::ONE).abs() < 1e-14);
        assert!((b1 - Complex::I).abs() < 1e-14);
    }

    #[test]
    fn complex_refactor_replays_frozen_plan() {
        // An RC-divider style system re-valued across frequencies: the
        // pattern is ordered once, every later frequency replays it.
        let n = 16;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let csr = t.to_csr();
        let pattern = Arc::clone(csr.pattern());
        let g: Vec<f64> = csr.values().to_vec();
        let mut lu = SparseLu::<Complex>::new();
        let mut first_ops = 0;
        for (k, omega) in [1.0, 10.0, 100.0, 1000.0].into_iter().enumerate() {
            let vals: Vec<Complex> = g.iter().map(|&gr| Complex::new(gr, 1e-3 * omega)).collect();
            lu.factor(&pattern, &vals).expect("factor");
            if k == 0 {
                first_ops = lu.factor_ops();
            }
            let b = vec![Complex::ONE; n];
            let x = lu.solve_factored(&b).expect("solve");
            // Residual of the tridiagonal system at every row.
            for r in 0..n {
                let mut acc = vals[pattern.slot(r, r).unwrap()] * x[r];
                if r > 0 {
                    acc += vals[pattern.slot(r, r - 1).unwrap()] * x[r - 1];
                }
                if r + 1 < n {
                    acc += vals[pattern.slot(r, r + 1).unwrap()] * x[r + 1];
                }
                assert!((acc - Complex::ONE).abs() < 1e-12, "row {r}: {acc}");
            }
        }
        assert_eq!(lu.symbolic_factor_count(), 1, "ordered exactly once");
        assert_eq!(lu.refactor_count(), 3, "re-valued per frequency");
        assert_eq!(lu.factor_ops(), first_ops, "replay costs the same ops");
    }

    #[test]
    fn complex_singular_matrix_is_reported() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let csr = t.to_csr();
        let vals: Vec<Complex> = csr.values().iter().map(|&v| Complex::from(v)).collect();
        let mut lu = SparseLu::<Complex>::new();
        assert!(matches!(
            lu.factor(csr.pattern(), &vals),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(matches!(
            lu.solve_factored(&[Complex::ONE, Complex::ONE]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn generic_factor_rejects_bad_shapes() {
        let mut t = TripletMatrix::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let csr = t.to_csr();
        let mut lu = SparseLu::<f64>::new();
        assert!(matches!(
            lu.factor(csr.pattern(), csr.values()),
            Err(NumericsError::InvalidInput(_))
        ));
        let mut sq = TripletMatrix::new(2, 2);
        sq.push(0, 0, 1.0);
        sq.push(1, 1, 1.0);
        let sq = sq.to_csr();
        assert!(matches!(
            lu.factor(sq.pattern(), &[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn dense_lu_ops_formula() {
        // n = 3: k=0 → 2 + 4, k=1 → 1 + 1, k=2 → 0.
        assert_eq!(dense_lu_ops(3), 8);
        assert_eq!(dense_lu_ops(0), 0);
        assert_eq!(dense_lu_ops(1), 0);
    }

    #[test]
    fn solve_before_factor_is_an_error() {
        let dense = DenseLuSolver::new();
        let sparse = SparseLuSolver::new();
        assert!(matches!(
            dense.solve_factored(&[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        assert!(matches!(
            sparse.solve_factored(&[1.0]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn failed_factor_invalidates_previous_factors() {
        // A successful factor followed by a singular one: the solver
        // must not serve the (partially overwritten) old factors.
        let a1 = csr_from_dense(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut a2 = a1.clone();
        a2.set_zero();
        a2.add_at(0, 0, 1.0);
        a2.add_at(0, 1, 2.0);
        a2.add_at(1, 0, 2.0);
        a2.add_at(1, 1, 4.0);
        let mut sparse = SparseLuSolver::new();
        sparse.factor(&a1).expect("first factor");
        assert!(sparse.factor(&a2).is_err());
        assert!(matches!(
            sparse.solve_factored(&[1.0, 2.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        let mut dense = DenseLuSolver::new();
        dense.factor(&a1).expect("first factor");
        assert!(dense.factor(&a2).is_err());
        assert!(matches!(
            dense.solve_factored(&[1.0, 2.0]),
            Err(NumericsError::InvalidInput(_))
        ));
        // Both recover with a good matrix.
        sparse.factor(&a1).expect("recovery factor");
        dense.factor(&a1).expect("recovery factor");
        assert!(sparse.solve_factored(&[1.0, 2.0]).is_ok());
        assert!(dense.solve_factored(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn repivot_on_value_collapse_keeps_answers_right() {
        // First factor with a dominant (0,0); then flip dominance so the
        // frozen pivot order would divide by ~0 and must re-pivot.
        let stamp = |a11: f64, a21: f64| {
            let mut t = TripletMatrix::new(2, 2);
            t.push(0, 0, a11);
            t.push(0, 1, 1.0);
            t.push(1, 0, a21);
            t.push(1, 1, 1.0);
            t.to_csr()
        };
        let a1 = stamp(4.0, 1.0);
        let mut sparse = SparseLuSolver::new();
        sparse.factor(&a1).expect("factor 1");
        // Same pattern object is required for the replay path; rebuild
        // with identical structure and tiny pivot.
        let mut a2 = a1.clone();
        a2.set_zero();
        a2.add_at(0, 0, 1e-30);
        a2.add_at(0, 1, 1.0);
        a2.add_at(1, 0, 1.0);
        a2.add_at(1, 1, 1.0);
        sparse.factor(&a2).expect("factor 2 re-pivots");
        let x = sparse.solve_factored(&[1.0, 2.0]).expect("solve");
        let mut dense = DenseLuSolver::new();
        let xd = dense.solve(&a2, &[1.0, 2.0]).expect("dense");
        for (s, d) in x.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    /// A tridiagonal ladder with an off-band entry: a playground with
    /// nontrivial elimination dependencies.
    fn ladder(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + i as f64 * 0.01);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.push(0, n - 1, -0.25);
        t.push(n - 1, 0, -0.25);
        t.to_csr()
    }

    #[test]
    fn partial_refactor_matches_full_replay_bitwise() {
        let n = 24;
        let a = ladder(n);
        let mut lu = SparseLu::<f64>::new();
        lu.factor(a.pattern(), a.values()).expect("first factor");
        // Change two mid-ladder couplings.
        let mut vals = a.values().to_vec();
        let s1 = a.pattern().slot(10, 11).unwrap();
        let s2 = a.pattern().slot(15, 15).unwrap();
        vals[s1] = -1.5;
        vals[s2] = 3.25;
        lu.factor_partial(a.pattern(), &vals, &[s1, s2])
            .expect("partial");
        let stats = lu.factor_path_stats();
        assert_eq!(stats.partial_refactorizations, 1);
        assert!(
            stats.columns_recomputed < stats.columns_total,
            "a localized change must not replay every column: {stats:?}"
        );
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x_partial = lu.solve_factored(&b).expect("solve after partial");
        // Full replay of the same values on the same frozen plan is the
        // bitwise reference.
        lu.factor(a.pattern(), &vals).expect("full replay");
        let x_full = lu.solve_factored(&b).expect("solve after full");
        for (p, f) in x_partial.iter().zip(&x_full) {
            assert_eq!(p.to_bits(), f.to_bits(), "{p} vs {f}");
        }
    }

    #[test]
    fn partial_refactor_with_no_changes_is_a_noop() {
        let a = ladder(12);
        let mut lu = SparseLu::<f64>::new();
        lu.factor(a.pattern(), a.values()).expect("factor");
        let before = lu.factor_path_stats();
        lu.factor_partial(a.pattern(), a.values(), &[])
            .expect("empty partial");
        let d = lu.factor_path_stats().delta_since(&before);
        assert_eq!(d.partial_refactorizations, 1);
        assert_eq!(d.columns_recomputed, 0, "nothing changed, nothing replayed");
        assert_eq!(lu.factor_ops(), 0);
        let b = vec![1.0; 12];
        let x = lu.solve_factored(&b).expect("factors still valid");
        let resid = a.mul_vec(&x);
        for (rr, bb) in resid.iter().zip(&b) {
            assert!((rr - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn partial_refactor_pivot_collapse_falls_back_to_repivot() {
        let stamp = |a11: f64| {
            let mut t = TripletMatrix::new(2, 2);
            t.push(0, 0, a11);
            t.push(0, 1, 1.0);
            t.push(1, 0, 1.0);
            t.push(1, 1, 1.0);
            t.to_csr()
        };
        let a1 = stamp(4.0);
        let mut lu = SparseLu::<f64>::new();
        lu.factor(a1.pattern(), a1.values()).expect("factor 1");
        let sym_before = lu.symbolic_factor_count();
        let mut vals = a1.values().to_vec();
        let s = a1.pattern().slot(0, 0).unwrap();
        vals[s] = 1e-30;
        lu.factor_partial(a1.pattern(), &vals, &[s])
            .expect("collapse re-pivots transparently");
        assert_eq!(lu.symbolic_factor_count(), sym_before + 1);
        let x = lu.solve_factored(&[1.0, 2.0]).expect("solve");
        let mut dense = DenseLuSolver::new();
        let a2 = stamp(1e-30);
        let xd = dense.solve(&a2, &[1.0, 2.0]).expect("dense");
        for (sv, d) in x.iter().zip(&xd) {
            assert!((sv - d).abs() < 1e-9, "{sv} vs {d}");
        }
    }

    #[test]
    fn partial_refactor_rejects_out_of_pattern_slots() {
        let a = ladder(8);
        let mut lu = SparseLu::<f64>::new();
        lu.factor(a.pattern(), a.values()).expect("factor");
        assert!(matches!(
            lu.factor_partial(a.pattern(), a.values(), &[a.nnz()]),
            Err(NumericsError::InvalidInput(_))
        ));
    }

    #[test]
    fn partial_refactor_without_a_frozen_plan_pivots_fully() {
        let a = ladder(8);
        let mut lu = SparseLu::<f64>::new();
        lu.factor_partial(a.pattern(), a.values(), &[0])
            .expect("first-call partial factors fully");
        assert_eq!(lu.symbolic_factor_count(), 1);
        assert_eq!(lu.partial_refactor_count(), 0);
        assert!(lu.solve_factored(&[1.0; 8]).is_ok());
    }

    #[test]
    fn orderings_are_permutations_and_factor_correctly() {
        let a = ladder(16);
        for order in [
            ascending_degree_order(a.pattern()),
            amd_order(a.pattern()),
            btf_amd_order(a.pattern()),
        ] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "not a permutation");
        }
        for ordering in [
            FillOrdering::AscendingDegree,
            FillOrdering::AmdBtf,
            FillOrdering::Auto,
        ] {
            let mut lu = SparseLu::<f64>::new();
            lu.set_ordering(ordering);
            lu.factor(a.pattern(), a.values()).expect("factor");
            let b: Vec<f64> = (0..16).map(|i| i as f64 - 8.0).collect();
            let x = lu.solve_factored(&b).expect("solve");
            let resid = a.mul_vec(&x);
            for (rr, bb) in resid.iter().zip(&b) {
                assert!((rr - bb).abs() < 1e-10, "{ordering:?}: {rr} vs {bb}");
            }
        }
    }

    #[test]
    fn auto_ordering_fill_never_exceeds_static() {
        // An arrow matrix: the static degree order handles it well, and
        // Auto must never do worse on any structure.
        let n = 32;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let arrow = t.to_csr();
        for a in [&arrow, &ladder(n)] {
            let mut st = SparseLu::<f64>::new();
            st.set_ordering(FillOrdering::AscendingDegree);
            st.factor(a.pattern(), a.values()).expect("static");
            let mut auto = SparseLu::<f64>::new();
            auto.factor(a.pattern(), a.values()).expect("auto");
            assert!(
                auto.factor_nnz() <= st.factor_nnz(),
                "auto fill {} vs static fill {}",
                auto.factor_nnz(),
                st.factor_nnz()
            );
        }
    }

    #[test]
    fn btf_blocks_of_block_triangular_pattern_localize_amd() {
        // 2x2 block lower-triangular: {0,1} and {2,3} blocks. BTF must
        // order each block contiguously.
        let mut t = TripletMatrix::new(4, 4);
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(2, 0, 0.5); // cross-block coupling, lower only
        t.push(2, 2, 2.0);
        t.push(2, 3, 1.0);
        t.push(3, 2, 1.0);
        t.push(3, 3, 2.0);
        let a = t.to_csr();
        let order = btf_amd_order(a.pattern());
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (k, &c) in order.iter().enumerate() {
                p[c] = k;
            }
            p
        };
        let first_block: std::collections::BTreeSet<usize> = [pos[0], pos[1]].into_iter().collect();
        let second_block: std::collections::BTreeSet<usize> =
            [pos[2], pos[3]].into_iter().collect();
        assert!(
            first_block.iter().max() < second_block.iter().min()
                || second_block.iter().max() < first_block.iter().min(),
            "blocks are not contiguous in {order:?}"
        );
    }

    #[test]
    fn assembler_replays_tracked_write_sequence() {
        let mut asm = PatternAssembler::new(3, 3);
        asm.set_track_writes(true);
        let stamp = |asm: &mut PatternAssembler, g: f64| {
            asm.begin();
            asm.add(0, 0, g);
            asm.add(0, 1, -g);
            asm.add(1, 1, g);
            asm.add(1, 1, 1e-3); // duplicate slot, summed in order
            asm.add(2, 2, 1.0);
        };
        stamp(&mut asm, 1.0);
        asm.finish();
        assert_eq!(asm.write_count(), 5);
        assert_eq!(asm.write_slots().len(), 5);
        assert_eq!(asm.replay_hits(), 0, "recording cycle never replays");
        stamp(&mut asm, 2.0);
        let m = asm.finish();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 2.0 + 1e-3);
        assert_eq!(asm.replay_hits(), 5);
        assert_eq!(asm.replay_misses(), 0);
        // The same slots are written every cycle, so callers may carve
        // write_slots() into per-contributor ranges.
        let slots = asm.write_slots().to_vec();
        assert_eq!(slots[2], slots[3], "duplicate add maps to one slot");
    }

    #[test]
    fn assembler_tracked_cycle_deviating_falls_back_correctly() {
        let mut asm = PatternAssembler::new(2, 2);
        asm.set_track_writes(true);
        asm.begin();
        asm.add(0, 0, 1.0);
        asm.add(1, 1, 2.0);
        asm.finish();
        // Different order than recorded: misses the sequence, stays
        // correct through the searched path.
        asm.begin();
        asm.add(1, 1, 5.0);
        asm.add(0, 0, 4.0);
        let m = asm.finish();
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert!(asm.replay_misses() > 0);
    }

    #[test]
    fn complex_partial_refactor_matches_full() {
        // The AC use case: conductances fixed, only the jω slots churn.
        let n = 16;
        let a = ladder(n);
        let pattern = Arc::clone(a.pattern());
        let g: Vec<f64> = a.values().to_vec();
        let dyn_slots: Vec<usize> = (0..n).map(|i| pattern.slot(i, i).unwrap()).collect();
        let make = |omega: f64| -> Vec<Complex> {
            let mut v: Vec<Complex> = g.iter().map(|&gr| Complex::from(gr)).collect();
            for &s in &dyn_slots {
                v[s] += Complex::new(0.0, 1e-3 * omega);
            }
            v
        };
        let mut lu = SparseLu::<Complex>::new();
        let mut full = SparseLu::<Complex>::new();
        lu.factor(&pattern, &make(1.0)).expect("first factor");
        full.factor(&pattern, &make(1.0)).expect("first factor");
        let b = vec![Complex::ONE; n];
        for omega in [10.0, 100.0, 1000.0] {
            let vals = make(omega);
            lu.factor_partial(&pattern, &vals, &dyn_slots)
                .expect("partial");
            full.factor(&pattern, &vals).expect("full");
            let xp = lu.solve_factored(&b).expect("solve");
            let xf = full.solve_factored(&b).expect("solve");
            for (p, f) in xp.iter().zip(&xf) {
                assert_eq!(p.re.to_bits(), f.re.to_bits());
                assert_eq!(p.im.to_bits(), f.im.to_bits());
            }
        }
        assert_eq!(lu.partial_refactor_count(), 3);
    }
}
