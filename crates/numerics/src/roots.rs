//! Closed-form real roots of polynomials up to cubic order.
//!
//! The paper's headline trick is that with charge segments of order ≤ 3 the
//! self-consistent voltage equation becomes a cubic per segment pair, so the
//! entire Newton–Raphson loop of the reference model collapses into the
//! formulas in this module. Numerical care matters here: the quadratic uses
//! the stable `q = -(b + sign(b)√Δ)/2` form and the cubic uses the
//! trigonometric method in the three-real-root regime to avoid catastrophic
//! cancellation, followed by one Newton polish step.

use crate::polynomial::Polynomial;

/// Relative tolerance used to classify near-zero leading coefficients and
/// near-zero discriminants.
const EPS: f64 = 1e-12;

/// Real roots of `a x + b = 0`.
///
/// Returns an empty vector when `a == 0` (either no root or infinitely
/// many; both are useless to the segment solver, which treats them as "no
/// crossing in this segment").
pub fn solve_linear(a: f64, b: f64) -> Vec<f64> {
    if a == 0.0 {
        Vec::new()
    } else {
        vec![-b / a]
    }
}

/// Real roots of `a x² + b x + c = 0`, in ascending order.
///
/// Degenerates gracefully to the linear case when `a` is negligible
/// relative to the other coefficients. A double root is reported once.
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    let scale = a.abs().max(b.abs()).max(c.abs());
    if scale == 0.0 {
        return Vec::new();
    }
    if a.abs() < EPS * scale {
        return solve_linear(b, c);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < -EPS * scale * scale {
        return Vec::new();
    }
    if disc <= 0.0 {
        return vec![-b / (2.0 * a)];
    }
    let sq = disc.sqrt();
    // Stable form: compute the larger-magnitude root first, derive the other
    // from the product of roots to avoid cancellation.
    let q = -0.5 * (b + b.signum() * sq);
    let (r1, r2) = if b == 0.0 {
        let r = sq / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    let mut roots = vec![r1, r2];
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() <= EPS * (1.0 + x.abs()));
    roots
}

/// Real roots of `a x³ + b x² + c x + d = 0`, in ascending order.
///
/// Uses the depressed-cubic reduction; the one-real-root regime goes through
/// Cardano's formula with cancellation-free signs and the three-real-root
/// regime goes through Viète's trigonometric method. Every root receives a
/// single Newton polish on the original coefficients.
pub fn solve_cubic(a: f64, b: f64, c: f64, d: f64) -> Vec<f64> {
    let scale = a.abs().max(b.abs()).max(c.abs()).max(d.abs());
    if scale == 0.0 {
        return Vec::new();
    }
    if a.abs() < EPS * scale {
        return solve_quadratic(b, c, d);
    }
    // Normalise to x³ + p2 x² + p1 x + p0.
    let p2 = b / a;
    let p1 = c / a;
    let p0 = d / a;
    // Depress: x = t - p2/3 → t³ + p t + q = 0.
    let shift = p2 / 3.0;
    let p = p1 - p2 * p2 / 3.0;
    let q = p0 - p2 * p1 / 3.0 + 2.0 * p2 * p2 * p2 / 27.0;

    let candidates = depressed_cubic_roots(p, q)
        .into_iter()
        .map(|t| t - shift)
        .collect::<Vec<_>>();

    // The analytic candidates can lose most of their digits when the
    // depressed-cubic back-substitution `t − p2/3` cancels (e.g. a cubic
    // that is nearly quadratic). Strategy: Newton-polish every candidate,
    // keep the one that converged best, then deflate to a quadratic and
    // solve the remaining roots in closed form.
    let rel_res = |r: f64| {
        let f = ((a * r + b) * r + c) * r + d;
        let s = a.abs() * r.abs().powi(3) + b.abs() * r * r + c.abs() * r.abs() + d.abs();
        f.abs() / (1.0 + s)
    };
    let polish = |mut r: f64| {
        for _ in 0..20 {
            let f = ((a * r + b) * r + c) * r + d;
            let df = (3.0 * a * r + 2.0 * b) * r + c;
            if df == 0.0 {
                break;
            }
            let step = f / df;
            if !step.is_finite() || step.abs() >= 1.0 + r.abs() {
                break;
            }
            r -= step;
            if step.abs() <= 1e-15 * (1.0 + r.abs()) {
                break;
            }
        }
        r
    };
    let polished: Vec<f64> = candidates.into_iter().map(polish).collect();
    let r0 = polished
        .iter()
        .copied()
        .min_by(|x, y| rel_res(*x).partial_cmp(&rel_res(*y)).expect("finite"))
        .expect("analytic cubic solver always yields a candidate");

    // Synthetic division by (x − r0): quotient a x² + e x + g.
    let e = b + a * r0;
    let g = c + e * r0;
    let mut roots = vec![r0];
    for r in solve_quadratic(a, e, g) {
        let rp = polish(r);
        // Accept only roots the original cubic actually supports.
        if rel_res(rp) < 1e-7 {
            roots.push(rp);
        }
    }
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() <= 1e-9 * (1.0 + x.abs()));
    roots
}

/// Real roots of the depressed cubic `t³ + p t + q = 0`.
fn depressed_cubic_roots(p: f64, q: f64) -> Vec<f64> {
    let half_q = q / 2.0;
    let third_p = p / 3.0;
    let disc = half_q * half_q + third_p * third_p * third_p;
    let magnitude = (p.abs() / 3.0).max(q.abs() / 2.0).max(1e-30);
    let disc_tol = EPS * magnitude * magnitude * magnitude.max(1.0);

    if disc > disc_tol {
        // One real root: Cardano with a cancellation-free pairing.
        let s = disc.sqrt();
        let u = (-half_q + s).cbrt();
        // v from u via p to avoid subtracting nearly equal cube roots.
        let v = if u.abs() > 1e-300 {
            -third_p / u
        } else {
            (-half_q - s).cbrt()
        };
        vec![u + v]
    } else if disc < -disc_tol {
        // Three distinct real roots: trigonometric method (p < 0 here).
        let m = (-third_p).sqrt();
        let arg = (-half_q / (m * m * m)).clamp(-1.0, 1.0);
        let theta = arg.acos() / 3.0;
        let two_pi_3 = 2.0 * std::f64::consts::PI / 3.0;
        vec![
            2.0 * m * theta.cos(),
            2.0 * m * (theta - two_pi_3).cos(),
            2.0 * m * (theta + two_pi_3).cos(),
        ]
    } else {
        // Borderline: repeated roots.
        if p.abs() < EPS * magnitude {
            // Triple root at 0 (q ~ 0 too when disc ~ 0).
            vec![0.0]
        } else {
            // disc = 0 with p ≠ 0: a double root and a simple root.
            let r_double = -1.5 * q / p;
            let r_single = 3.0 * q / p;
            if (r_double - r_single).abs() < 1e-9 * (1.0 + r_double.abs()) {
                vec![r_double]
            } else {
                vec![r_double, r_single]
            }
        }
    }
}

/// Real roots of an arbitrary polynomial of degree ≤ 3, in ascending order.
///
/// # Panics
///
/// Panics if the polynomial degree exceeds 3; the compact model never
/// constructs such a polynomial and a higher degree indicates a logic error
/// upstream.
pub fn real_roots(p: &Polynomial) -> Vec<f64> {
    match p.degree() {
        None | Some(0) => Vec::new(),
        Some(1) => solve_linear(p.coeff(1), p.coeff(0)),
        Some(2) => solve_quadratic(p.coeff(2), p.coeff(1), p.coeff(0)),
        Some(3) => solve_cubic(p.coeff(3), p.coeff(2), p.coeff(1), p.coeff(0)),
        Some(n) => panic!("real_roots supports degree <= 3, got {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_roots(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len(), "got {got:?}, want {want:?}");
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g - w).abs() < tol * (1.0 + w.abs()),
                "got {got:?}, want {want:?}"
            );
        }
    }

    #[test]
    fn linear_root() {
        assert_roots(&solve_linear(2.0, -4.0), &[2.0], 1e-14);
        assert!(solve_linear(0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_two_roots() {
        assert_roots(&solve_quadratic(1.0, -3.0, 2.0), &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert!(solve_quadratic(1.0, 0.0, 1.0).is_empty());
    }

    #[test]
    fn quadratic_double_root_reported_once() {
        let r = solve_quadratic(1.0, -2.0, 1.0);
        assert_roots(&r, &[1.0], 1e-9);
    }

    #[test]
    fn quadratic_is_stable_for_small_c() {
        // x² - 1e8 x + 1 = 0 has roots ~1e8 and ~1e-8; the naive formula
        // destroys the small root.
        let r = solve_quadratic(1.0, -1e8, 1.0);
        assert_eq!(r.len(), 2);
        assert!((r[0] - 1e-8).abs() < 1e-16);
        assert!((r[1] - 1e8).abs() < 1.0);
    }

    #[test]
    fn quadratic_degenerates_to_linear() {
        assert_roots(&solve_quadratic(0.0, 2.0, -6.0), &[3.0], 1e-14);
    }

    #[test]
    fn cubic_three_real_roots() {
        // (x-1)(x-2)(x-3) = x³ -6x² +11x -6
        assert_roots(&solve_cubic(1.0, -6.0, 11.0, -6.0), &[1.0, 2.0, 3.0], 1e-10);
    }

    #[test]
    fn cubic_one_real_root() {
        // (x-2)(x²+1) = x³ -2x² + x - 2
        assert_roots(&solve_cubic(1.0, -2.0, 1.0, -2.0), &[2.0], 1e-10);
    }

    #[test]
    fn cubic_negative_roots() {
        // (x+1)(x+4)(x-0.5)
        let p = Polynomial::from_roots(&[-1.0, -4.0, 0.5]);
        let r = solve_cubic(p.coeff(3), p.coeff(2), p.coeff(1), p.coeff(0));
        assert_roots(&r, &[-4.0, -1.0, 0.5], 1e-10);
    }

    #[test]
    fn cubic_degenerates_to_quadratic() {
        assert_roots(&solve_cubic(0.0, 1.0, -3.0, 2.0), &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn cubic_with_tiny_leading_coefficient_is_consistent() {
        // Nearly-quadratic cubic: roots should stay close to the quadratic's.
        let r = solve_cubic(1e-16, 1.0, -3.0, 2.0);
        assert!(r.iter().any(|x| (x - 1.0).abs() < 1e-6));
        assert!(r.iter().any(|x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn cubic_triple_root() {
        // (x-1)³ = x³ -3x² +3x -1
        let r = solve_cubic(1.0, -3.0, 3.0, -1.0);
        assert!(!r.is_empty());
        for x in &r {
            assert!((x - 1.0).abs() < 2e-4, "{r:?}");
        }
    }

    #[test]
    fn cubic_wide_magnitude_roots() {
        let p = Polynomial::from_roots(&[-1e3, 0.25, 1e2]);
        let r = solve_cubic(p.coeff(3), p.coeff(2), p.coeff(1), p.coeff(0));
        assert_roots(&r, &[-1e3, 0.25, 1e2], 1e-6);
    }

    #[test]
    fn real_roots_dispatches_by_degree() {
        assert!(real_roots(&Polynomial::zero()).is_empty());
        assert!(real_roots(&Polynomial::constant(5.0)).is_empty());
        assert_roots(
            &real_roots(&Polynomial::new(vec![-2.0, 1.0])),
            &[2.0],
            1e-14,
        );
        assert_roots(
            &real_roots(&Polynomial::new(vec![2.0, -3.0, 1.0])),
            &[1.0, 2.0],
            1e-12,
        );
        assert_roots(
            &real_roots(&Polynomial::from_roots(&[0.0, 1.0, -1.0])),
            &[-1.0, 0.0, 1.0],
            1e-10,
        );
    }

    #[test]
    #[should_panic(expected = "degree <= 3")]
    fn real_roots_panics_on_quartic() {
        let _ = real_roots(&Polynomial::new(vec![1.0, 0.0, 0.0, 0.0, 1.0]));
    }

    #[test]
    fn roots_satisfy_residual_bound_on_random_cubics() {
        // Deterministic pseudo-random sweep (no rand dependency needed).
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        for _ in 0..500 {
            let (a, b, c, d) = (next(), next(), next(), next());
            if a.abs() < 0.05 {
                continue;
            }
            let roots = solve_cubic(a, b, c, d);
            assert!(!roots.is_empty(), "odd-degree must have a real root");
            for r in roots {
                let res = ((a * r + b) * r + c) * r + d;
                let scale = a.abs() * r.abs().powi(3)
                    + b.abs() * r.powi(2).abs()
                    + c.abs() * r.abs()
                    + d.abs();
                assert!(res.abs() <= 1e-7 * (1.0 + scale), "res {res} at root {r}");
            }
        }
    }
}
