//! Scalar and small-dimension minimisation.
//!
//! The paper determines segment boundaries "calculated to minimise the RMS
//! deviation from the theoretical curves" — a low-dimensional, noisy-free
//! but non-smooth optimisation (the objective re-fits polynomials for every
//! candidate breakpoint vector). Golden-section handles the 1-D case and
//! Nelder–Mead the 2-D/3-D breakpoint searches; neither needs derivatives.

/// Result of a minimisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Arguments of the minimum found.
    pub x: Vec<f64>,
    /// Objective value at [`Minimum::x`].
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// Minimises a unimodal scalar function on `[a, b]` by golden-section
/// search.
///
/// Runs until the interval shrinks below `x_tol` (or 200 iterations). For
/// multimodal objectives it converges to *a* local minimum inside the
/// bracket.
///
/// # Panics
///
/// Panics if `a >= b` or `x_tol <= 0`.
pub fn golden_section<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, x_tol: f64) -> Minimum {
    assert!(a < b, "golden_section requires a < b");
    assert!(x_tol > 0.0, "x_tol must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - INV_PHI * (hi - lo);
    let mut x2 = lo + INV_PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evals = 2;
    for _ in 0..200 {
        if (hi - lo).abs() < x_tol {
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - INV_PHI * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + INV_PHI * (hi - lo);
            f2 = f(x2);
        }
        evals += 1;
    }
    let (x, value) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
    Minimum {
        x: vec![x],
        value,
        evaluations: evals,
    }
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Initial simplex edge length, per coordinate.
    pub initial_step: f64,
    /// Stop when the simplex's objective spread falls below this value.
    pub f_tol: f64,
    /// Maximum objective evaluations.
    pub max_evals: usize,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            initial_step: 0.05,
            f_tol: 1e-12,
            max_evals: 2000,
        }
    }
}

/// Minimises an `n`-dimensional function with the Nelder–Mead simplex
/// method (reflection/expansion/contraction/shrink with standard
/// coefficients).
///
/// Derivative-free and robust to the mildly non-smooth objectives produced
/// by refitting piecewise models per candidate breakpoint.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    opts: NelderMeadOptions,
) -> Minimum {
    assert!(
        !x0.is_empty(),
        "nelder_mead requires at least one dimension"
    );
    let n = x0.len();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| {
        *evals += 1;
        f(x)
    };

    // Initial simplex: x0 plus one perturbed vertex per coordinate.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let fx0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for i in 0..n {
        let mut v = x0.to_vec();
        v[i] += if v[i].abs() > 1e-12 {
            opts.initial_step * v[i].abs()
        } else {
            opts.initial_step
        };
        let fv = eval(&v, &mut evals);
        simplex.push((v, fv));
    }

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must not be NaN"));
        let spread = simplex[n].1 - simplex[0].1;
        if spread.abs() < opts.f_tol {
            break;
        }
        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (v, _) in simplex.iter().take(n) {
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(&reflect, &mut evals);
        if fr < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let fe = eval(&expand, &mut evals);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(&contract, &mut evals);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink towards the best vertex.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, v)| b + sigma * (v - b))
                        .collect();
                    let fs = eval(&shrunk, &mut evals);
                    *entry = (shrunk, fs);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("objective must not be NaN"));
    Minimum {
        x: simplex[0].0.clone(),
        value: simplex[0].1,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let m = golden_section(|x| (x - 1.3) * (x - 1.3) + 2.0, -5.0, 5.0, 1e-10);
        assert!((m.x[0] - 1.3).abs() < 1e-7, "{:?}", m.x);
        assert!((m.value - 2.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_respects_bracket() {
        // Minimum of x at left edge of bracket.
        let m = golden_section(|x| x, 2.0, 5.0, 1e-9);
        assert!((m.x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn golden_section_rejects_inverted_bracket() {
        let _ = golden_section(|x| x * x, 1.0, -1.0, 1e-6);
    }

    #[test]
    fn nelder_mead_minimises_quadratic_bowl() {
        let m = nelder_mead(
            |x| (x[0] - 1.0).powi(2) + 2.0 * (x[1] + 0.5).powi(2),
            &[4.0, 4.0],
            NelderMeadOptions::default(),
        );
        assert!((m.x[0] - 1.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] + 0.5).abs() < 1e-4, "{:?}", m.x);
    }

    #[test]
    fn nelder_mead_handles_rosenbrock() {
        let m = nelder_mead(
            |x| {
                let a = 1.0 - x[0];
                let b = x[1] - x[0] * x[0];
                a * a + 100.0 * b * b
            },
            &[-1.2, 1.0],
            NelderMeadOptions {
                max_evals: 6000,
                f_tol: 1e-14,
                ..Default::default()
            },
        );
        assert!((m.x[0] - 1.0).abs() < 1e-3, "{:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-3, "{:?}", m.x);
    }

    #[test]
    fn nelder_mead_one_dimension() {
        let m = nelder_mead(
            |x| (x[0] + 2.0).powi(2),
            &[7.0],
            NelderMeadOptions::default(),
        );
        assert!((m.x[0] + 2.0).abs() < 1e-5);
    }

    #[test]
    fn nelder_mead_respects_eval_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x.iter().map(|v| v * v).sum()
            },
            &[1.0, 1.0, 1.0],
            NelderMeadOptions {
                max_evals: 50,
                f_tol: 0.0,
                ..Default::default()
            },
        );
        // A shrink step may overshoot by at most n evaluations.
        assert!(count <= 55, "{count}");
    }

    #[test]
    fn nelder_mead_zero_start_perturbs_absolutely() {
        let m = nelder_mead(
            |x| (x[0] - 0.3).powi(2),
            &[0.0],
            NelderMeadOptions::default(),
        );
        assert!((m.x[0] - 0.3).abs() < 1e-5);
    }
}
