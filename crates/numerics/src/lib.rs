//! Numerical substrate for the `cntfet` workspace.
//!
//! Everything the reference ballistic model, the piecewise compact model and
//! the circuit simulator need is implemented here from scratch:
//!
//! * [`polynomial`] — dense univariate polynomials with exact calculus and
//!   closed-form real roots up to cubic order ([`roots`]);
//! * [`quadrature`] — adaptive Simpson and Gauss–Legendre rules, plus
//!   semi-infinite integrals for Fermi-type integrands;
//! * [`rootfind`] — bisection, safeguarded (damped) Newton–Raphson and Brent;
//! * [`linalg`] — dense matrices, LU with partial pivoting, and
//!   Householder-QR least squares;
//! * [`sparse`] — triplet → CSR assembly with a cached sparsity pattern
//!   and a [`sparse::LinearSolver`] trait (dense-LU fallback + fill-reusing
//!   sparse LU, scalar-generic over real and complex values) for the
//!   circuit simulator's MNA systems;
//! * [`complex`] — a minimal complex number for the frequency-domain
//!   (AC small-signal) solves of the circuit simulator;
//! * [`fit`] — unconstrained and equality-constrained polynomial least
//!   squares (the constraint machinery implements the paper's C¹-continuity
//!   requirement);
//! * [`optimize`] — golden-section and Nelder–Mead minimisers used for
//!   breakpoint placement;
//! * [`interp`] — linear and monotone-cubic interpolation of tabulated data;
//! * [`stats`] — RMS / relative-RMS error metrics used throughout the
//!   paper's tables.
//!
//! # Examples
//!
//! ```
//! use cntfet_numerics::polynomial::Polynomial;
//! use cntfet_numerics::quadrature::adaptive_simpson;
//!
//! let p = Polynomial::new(vec![0.0, 0.0, 3.0]); // 3x^2
//! let area = adaptive_simpson(&|x: f64| p.eval(x), 0.0, 1.0, 1e-12, 40);
//! assert!((area - 1.0).abs() < 1e-10);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod error;
pub mod fit;
pub mod interp;
pub mod linalg;
pub mod optimize;
pub mod polynomial;
pub mod quadrature;
pub mod rootfind;
pub mod roots;
pub mod sparse;
pub mod stats;

pub use error::NumericsError;
pub use polynomial::Polynomial;
