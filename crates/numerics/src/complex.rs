//! A minimal complex-number type for frequency-domain linear algebra.
//!
//! The AC small-signal analysis of the circuit simulator solves
//! `(G + jωC) x = b` — complex values over a real sparsity pattern. The
//! build environment is air-gapped (no `num-complex`), and the solver
//! only needs field arithmetic plus a magnitude, so this module provides
//! exactly that: a `Copy` cartesian complex number with operator
//! overloads, a robust (Smith's algorithm) division, and the polar
//! accessors the response post-processing wants (modulus, argument, dB).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number in cartesian form, `re + j·im`.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::complex::Complex;
///
/// let a = Complex::new(3.0, 4.0);
/// assert_eq!(a.abs(), 5.0);
/// let rotated = a * Complex::I;
/// assert_eq!(rotated, Complex::new(-4.0, 3.0));
/// // Division is exact on Gaussian-rational inputs.
/// assert_eq!(rotated / Complex::I, a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely imaginary number `0 + j·im` (e.g. `jω` factors).
    pub const fn imag(im: f64) -> Self {
        Complex { re: 0.0, im }
    }

    /// Modulus `|z| = √(re² + im²)`, overflow-safe via [`f64::hypot`].
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `re² + im²` (no square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians, in `(−π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate `re − j·im`.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus in decibels, `20·log₁₀|z|` (−∞ for zero).
    pub fn abs_db(self) -> f64 {
        20.0 * self.abs().log10()
    }

    /// `true` when both parts are finite (no NaN or infinity).
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex {
    type Output = Complex;
    /// Smith's algorithm: scales by the larger component of the divisor
    /// so intermediate products cannot overflow prematurely. Division by
    /// zero yields non-finite parts (as for `f64`), never panics.
    fn div(self, rhs: Complex) -> Complex {
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let den = rhs.re + rhs.im * r;
            Complex {
                re: (self.re + self.im * r) / den,
                im: (self.im - self.re * r) / den,
            }
        } else {
            let r = rhs.re / rhs.im;
            let den = rhs.im + rhs.re * r;
            Complex {
                re: (self.re * r + self.im) / den,
                im: (self.im * r - self.re) / den,
            }
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert!(((a * b) / b - a).abs() < 1e-15);
        let mut acc = Complex::ZERO;
        acc += a;
        acc -= b;
        acc *= Complex::I;
        assert_eq!(acc, Complex::new(-2.0, 3.0) * Complex::I);
    }

    #[test]
    fn division_is_overflow_safe() {
        // Naive (re²+im²) division would overflow to infinity here.
        let big = Complex::new(1e200, 1e200);
        let q = big / big;
        assert!((q.re - 1.0).abs() < 1e-15 && q.im.abs() < 1e-15, "{q}");
        let z = Complex::ONE / Complex::ZERO;
        assert!(!z.is_finite());
    }

    #[test]
    fn polar_accessors() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.abs(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((z.abs_db() - 20.0 * 2.0f64.log10()).abs() < 1e-12);
        assert_eq!(z.conj(), Complex::new(0.0, -2.0));
        assert_eq!(z.norm_sqr(), 4.0);
        assert_eq!(Complex::from(1.5), Complex::new(1.5, 0.0));
        assert_eq!(Complex::imag(-2.0), Complex::new(0.0, -2.0));
        assert_eq!(Complex::new(3.0, -1.0) * 2.0, Complex::new(6.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }
}
