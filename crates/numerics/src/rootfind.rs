//! Scalar root finding: bisection, Brent, and safeguarded Newton–Raphson.
//!
//! The reference ballistic model solves the self-consistent voltage
//! equation (paper eq. 7) with exactly the safeguarded Newton iteration
//! implemented here — the expensive loop the compact model eliminates.

use crate::error::NumericsError;

/// Options controlling the iterative root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootFindOptions {
    /// Absolute tolerance on the argument.
    pub x_tol: f64,
    /// Absolute tolerance on the residual.
    pub f_tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
}

impl Default for RootFindOptions {
    fn default() -> Self {
        RootFindOptions {
            x_tol: 1e-12,
            f_tol: 1e-14,
            max_iter: 100,
        }
    }
}

/// Finds a root of `f` in `[a, b]` by bisection.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] if `f(a)` and `f(b)` have the
/// same sign, and [`NumericsError::ConvergenceFailure`] if the interval
/// fails to shrink below tolerance within the iteration budget (possible
/// only with pathological tolerances).
pub fn bisection<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    opts: RootFindOptions,
) -> Result<f64, NumericsError> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidBracket { fa: flo, fb: fhi });
    }
    for _ in 0..opts.max_iter {
        let mid = 0.5 * (lo + hi);
        let fm = f(mid);
        if fm == 0.0 || (hi - lo) < opts.x_tol || fm.abs() < opts.f_tol {
            return Ok(mid);
        }
        if fm.signum() == flo.signum() {
            lo = mid;
            flo = fm;
        } else {
            hi = mid;
        }
    }
    Err(NumericsError::ConvergenceFailure {
        method: "bisection",
        iterations: opts.max_iter,
        residual: hi - lo,
    })
}

/// Finds a root of `f` in `[a, b]` with Brent's method (inverse quadratic
/// interpolation + secant + bisection safeguards).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] if the endpoints do not
/// bracket a sign change, and [`NumericsError::ConvergenceFailure`] if the
/// budget is exhausted.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    opts: RootFindOptions,
) -> Result<f64, NumericsError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::InvalidBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..opts.max_iter {
        if fb.abs() < opts.f_tol || (b - a).abs() < opts.x_tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond_outside = !((lo.min(b) < s) && (s < lo.max(b)));
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_dflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_small_m = mflag && (b - c).abs() < opts.x_tol;
        let cond_small_d = !mflag && (c - d).abs() < opts.x_tol;
        if cond_outside || cond_mflag || cond_dflag || cond_small_m || cond_small_d {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::ConvergenceFailure {
        method: "brent",
        iterations: opts.max_iter,
        residual: fb.abs(),
    })
}

/// Safeguarded Newton–Raphson: Newton steps with damping, falling back to
/// bisection on the bracket `[a, b]` whenever a step leaves the bracket or
/// fails to reduce the residual.
///
/// `fdf` returns `(f(x), f'(x))`. This mirrors the solver structure used by
/// FETToy for the self-consistent voltage equation.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidBracket`] if `[a, b]` does not bracket a
/// sign change, and [`NumericsError::ConvergenceFailure`] on budget
/// exhaustion.
pub fn newton_bracketed<F: FnMut(f64) -> (f64, f64)>(
    mut fdf: F,
    a: f64,
    b: f64,
    x0: f64,
    opts: RootFindOptions,
) -> Result<f64, NumericsError> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let (flo, _) = fdf(lo);
    let (fhi, _) = fdf(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo.signum() == fhi.signum() {
        return Err(NumericsError::InvalidBracket { fa: flo, fb: fhi });
    }
    let mut x = x0.clamp(lo, hi);
    let (mut fx, mut dfx) = fdf(x);
    for it in 0..opts.max_iter {
        if fx.abs() < opts.f_tol {
            return Ok(x);
        }
        // Maintain the bracket.
        if fx.signum() == flo.signum() {
            lo = x;
        } else {
            hi = x;
        }
        if (hi - lo).abs() < opts.x_tol {
            return Ok(0.5 * (lo + hi));
        }
        let newton_ok = dfx != 0.0 && dfx.is_finite();
        let mut next = if newton_ok { x - fx / dfx } else { f64::NAN };
        if !next.is_finite() || next <= lo || next >= hi {
            next = 0.5 * (lo + hi);
        }
        let (fnext, dfnext) = fdf(next);
        // Damp if the full step increased the residual badly.
        if fnext.abs() > 2.0 * fx.abs() && it + 1 < opts.max_iter {
            let damped = 0.5 * (x + next);
            let (fd, dfd) = fdf(damped);
            x = damped;
            fx = fd;
            dfx = dfd;
        } else {
            x = next;
            fx = fnext;
            dfx = dfnext;
        }
    }
    Err(NumericsError::ConvergenceFailure {
        method: "newton",
        iterations: opts.max_iter,
        residual: fx.abs(),
    })
}

/// Unbracketed Newton–Raphson with step damping, for callers that have a
/// good initial guess and a smooth function (e.g. warm-started sweeps).
///
/// # Errors
///
/// Returns [`NumericsError::ConvergenceFailure`] if the iteration budget is
/// exhausted or a derivative vanishes with a non-zero residual.
pub fn newton<F: FnMut(f64) -> (f64, f64)>(
    mut fdf: F,
    x0: f64,
    opts: RootFindOptions,
) -> Result<f64, NumericsError> {
    let mut x = x0;
    let (mut fx, mut dfx) = fdf(x);
    for _ in 0..opts.max_iter {
        if fx.abs() < opts.f_tol {
            return Ok(x);
        }
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::ConvergenceFailure {
                method: "newton",
                iterations: opts.max_iter,
                residual: fx.abs(),
            });
        }
        let mut step = fx / dfx;
        let mut next = x - step;
        let mut tries = 0;
        loop {
            let (fn_, dfn) = fdf(next);
            if fn_.abs() <= fx.abs() || tries >= 8 {
                if (next - x).abs() < opts.x_tol && fn_.abs() < opts.f_tol * 1e3 {
                    return Ok(next);
                }
                x = next;
                fx = fn_;
                dfx = dfn;
                break;
            }
            step *= 0.5;
            next = x - step;
            tries += 1;
        }
    }
    if fx.abs() < opts.f_tol * 1e3 {
        Ok(x)
    } else {
        Err(NumericsError::ConvergenceFailure {
            method: "newton",
            iterations: opts.max_iter,
            residual: fx.abs(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> RootFindOptions {
        RootFindOptions::default()
    }

    #[test]
    fn bisection_finds_sqrt2() {
        let r = bisection(|x| x * x - 2.0, 0.0, 2.0, opts()).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn bisection_rejects_bad_bracket() {
        let e = bisection(|x| x * x + 1.0, -1.0, 1.0, opts()).unwrap_err();
        assert!(matches!(e, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn bisection_accepts_root_at_endpoint() {
        let r = bisection(|x| x - 1.0, 1.0, 3.0, opts()).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn brent_beats_bisection_on_iterations() {
        let mut n_brent = 0;
        let mut n_bis = 0;
        let _ = brent(
            |x| {
                n_brent += 1;
                x.exp() - 5.0
            },
            0.0,
            4.0,
            opts(),
        )
        .unwrap();
        let _ = bisection(
            |x| {
                n_bis += 1;
                x.exp() - 5.0
            },
            0.0,
            4.0,
            opts(),
        )
        .unwrap();
        assert!(n_brent < n_bis, "brent {n_brent} vs bisection {n_bis}");
    }

    #[test]
    fn brent_finds_root_of_cubic() {
        let r = brent(|x| x * x * x - 2.0 * x - 5.0, 2.0, 3.0, opts()).unwrap();
        assert!((r - 2.0945514815423265).abs() < 1e-9, "{r}");
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, opts()),
            Err(NumericsError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn newton_bracketed_converges_from_poor_guess() {
        // Steep logistic-like residual, like the SCF equation.
        let f = |x: f64| {
            let e = (40.0 * (x - 0.3)).exp();
            let v = x + e / (1.0 + e) - 0.9;
            let dv = 1.0 + 40.0 * e / ((1.0 + e) * (1.0 + e));
            (v, dv)
        };
        let r = newton_bracketed(f, -2.0, 2.0, -2.0, opts()).unwrap();
        let (res, _) = f(r);
        assert!(res.abs() < 1e-10, "residual {res} at {r}");
    }

    #[test]
    fn newton_bracketed_requires_bracket() {
        assert!(matches!(
            newton_bracketed(|x| (x * x + 1.0, 2.0 * x), -1.0, 1.0, 0.0, opts()),
            Err(NumericsError::InvalidBracket { .. })
        ));
    }

    #[test]
    fn newton_quadratic_convergence() {
        let mut evals = 0;
        let r = newton(
            |x| {
                evals += 1;
                (x * x - 2.0, 2.0 * x)
            },
            1.0,
            opts(),
        )
        .unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-12);
        assert!(evals < 12, "{evals} evaluations");
    }

    #[test]
    fn newton_damps_overshooting_steps() {
        // atan has small derivative far out; plain Newton diverges from 5.
        let r = newton(
            |x: f64| (x.atan(), 1.0 / (1.0 + x * x)),
            3.0,
            RootFindOptions {
                max_iter: 200,
                ..opts()
            },
        )
        .unwrap();
        assert!(r.abs() < 1e-6, "{r}");
    }

    #[test]
    fn newton_reports_failure_on_flat_function() {
        let e = newton(|_| (1.0, 0.0), 0.0, opts()).unwrap_err();
        assert!(matches!(e, NumericsError::ConvergenceFailure { .. }));
    }

    #[test]
    fn all_methods_agree_on_same_problem() {
        let f = |x: f64| x.cos() - x;
        let b1 = bisection(f, 0.0, 1.0, opts()).unwrap();
        let b2 = brent(f, 0.0, 1.0, opts()).unwrap();
        let b3 = newton(|x: f64| (x.cos() - x, -x.sin() - 1.0), 0.5, opts()).unwrap();
        assert!((b1 - b2).abs() < 1e-8);
        assert!((b2 - b3).abs() < 1e-8);
    }
}
