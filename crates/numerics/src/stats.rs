//! Error metrics.
//!
//! The paper's Tables II–V report "average RMS errors" of the approximate
//! drain current against a reference. This module pins down the exact
//! definition used throughout the workspace so every table is computed the
//! same way: RMS of the pointwise deviation, normalised by the peak
//! reference magnitude of the sweep, in percent.

/// Root-mean-square of a sample.
///
/// Returns 0 for an empty slice.
pub fn rms(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Maximum absolute value (0 for an empty slice).
pub fn max_abs(values: &[f64]) -> f64 {
    values.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Infinity norm of a vector — the same quantity as [`max_abs`], under
/// the name used by residual/convergence logic (the circuit crate's
/// Newton engine shares this single definition instead of each analysis
/// carrying its own copy).
pub fn inf_norm(values: &[f64]) -> f64 {
    max_abs(values)
}

/// RMS deviation between two equal-length series.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rms_deviation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    rms(&diffs)
}

/// The paper's error metric: RMS deviation of `model` from `reference`,
/// normalised by the peak reference magnitude, in percent.
///
/// Returns 0 when the reference is identically zero (both series are then
/// expected to be zero too; any deviation would be meaningless to
/// normalise).
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// use cntfet_numerics::stats::relative_rms_percent;
/// let reference = [0.0, 1.0, 2.0, 4.0];
/// let model = [0.0, 1.0, 2.0, 4.0];
/// assert_eq!(relative_rms_percent(&model, &reference), 0.0);
/// ```
pub fn relative_rms_percent(model: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(
        model.len(),
        reference.len(),
        "series must have equal length"
    );
    let peak = max_abs(reference);
    if peak == 0.0 {
        return 0.0;
    }
    100.0 * rms_deviation(model, reference) / peak
}

/// Mean of per-sweep [`relative_rms_percent`] values — the "average RMS
/// error" aggregation used when a table cell spans several bias sweeps.
///
/// # Panics
///
/// Panics if any model/reference pair differs in length.
pub fn average_relative_rms_percent(pairs: &[(&[f64], &[f64])]) -> f64 {
    let per_sweep: Vec<f64> = pairs
        .iter()
        .map(|(m, r)| relative_rms_percent(m, r))
        .collect();
    mean(&per_sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_constant_series() {
        assert_eq!(rms(&[2.0, 2.0, 2.0]), 2.0);
        assert_eq!(rms(&[-2.0, 2.0]), 2.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn mean_and_max_abs() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn rms_deviation_basic() {
        assert_eq!(rms_deviation(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(rms_deviation(&[1.0, 3.0], &[1.0, 1.0]), 2.0f64.sqrt());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rms_deviation_checks_lengths() {
        let _ = rms_deviation(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn relative_rms_is_scale_invariant() {
        let reference = [0.0, 1e-6, 2e-6, 4e-6];
        let model = [0.0, 1.1e-6, 2.1e-6, 3.9e-6];
        let a = relative_rms_percent(&model, &reference);
        let scaled_ref: Vec<f64> = reference.iter().map(|v| v * 1e9).collect();
        let scaled_model: Vec<f64> = model.iter().map(|v| v * 1e9).collect();
        let b = relative_rms_percent(&scaled_model, &scaled_ref);
        assert!((a - b).abs() < 1e-12);
        assert!(a > 0.0 && a < 10.0, "{a}");
    }

    #[test]
    fn relative_rms_zero_reference() {
        assert_eq!(relative_rms_percent(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn relative_rms_known_value() {
        // deviation rms = 1, peak = 10 → 10 %.
        let reference = [10.0, 10.0];
        let model = [11.0, 9.0];
        assert!((relative_rms_percent(&model, &reference) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn average_over_sweeps() {
        let r1 = [10.0, 10.0];
        let m1 = [11.0, 9.0]; // 10 %
        let r2 = [10.0, 10.0];
        let m2 = [10.0, 10.0]; // 0 %
        let avg = average_relative_rms_percent(&[(&m1, &r1), (&m2, &r2)]);
        assert!((avg - 5.0).abs() < 1e-12);
    }
}
