//! Error type shared by all fallible routines in this crate.

use std::fmt;

/// Error returned by the numerical routines in [`crate`].
///
/// Every variant carries enough context to diagnose the failing call without
/// a debugger; the [`fmt::Display`] output is a lowercase, punctuation-free
/// sentence as recommended by the Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// An iterative method exhausted its iteration budget.
    ///
    /// Carries the method name, the iteration limit, and the best residual
    /// seen so the caller can decide whether the partial answer is usable.
    ConvergenceFailure {
        /// Human-readable name of the failing method (e.g. `"newton"`).
        method: &'static str,
        /// Number of iterations that were performed.
        iterations: usize,
        /// Magnitude of the residual when the budget ran out.
        residual: f64,
    },
    /// A bracketing method was given an interval whose endpoints do not
    /// bracket a root (`f(a)` and `f(b)` have the same sign).
    InvalidBracket {
        /// Function value at the left end of the interval.
        fa: f64,
        /// Function value at the right end of the interval.
        fb: f64,
    },
    /// A matrix was numerically singular during factorisation.
    SingularMatrix {
        /// Pivot column at which factorisation broke down.
        pivot: usize,
    },
    /// Input data violated a documented precondition.
    InvalidInput(String),
    /// A least-squares system was rank deficient.
    RankDeficient {
        /// Number of columns of the design matrix.
        columns: usize,
        /// Estimated numerical rank.
        rank: usize,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::ConvergenceFailure {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::InvalidBracket { fa, fb } => write!(
                f,
                "interval endpoints do not bracket a root (f(a) = {fa:.3e}, f(b) = {fb:.3e})"
            ),
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            NumericsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            NumericsError::RankDeficient { columns, rank } => write!(
                f,
                "least-squares system is rank deficient (rank {rank} of {columns} columns)"
            ),
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NumericsError::ConvergenceFailure {
            method: "newton",
            iterations: 50,
            residual: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("newton"));
        assert!(s.contains("50"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<NumericsError>();
    }

    #[test]
    fn variants_compare_equal_by_value() {
        let a = NumericsError::SingularMatrix { pivot: 2 };
        let b = NumericsError::SingularMatrix { pivot: 2 };
        assert_eq!(a, b);
        let c = NumericsError::SingularMatrix { pivot: 3 };
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_bracket_reports_both_values() {
        let e = NumericsError::InvalidBracket { fa: 1.0, fb: 2.0 };
        let s = e.to_string();
        assert!(s.contains("1.000e0"));
        assert!(s.contains("2.000e0"));
    }
}
