//! Synthetic experimental CNFET measurements.
//!
//! The paper's Section VI validates both compact models against measured
//! I–V data for an n-type CNFET from Javey et al., *Nano Letters* 5
//! (2005): d = 1.6 nm, t_ox = 50 nm, K-doped contacts, grounded back
//! gate, `E_F = −0.05 eV`, `T = 300 K`. The published point data is not
//! available to this reproduction, so this crate builds a **surrogate**:
//! the ideal ballistic reference current for the same device degraded by
//!
//! * a contact/series resistance on the drain path (real devices of that
//!   era were near- but not fully ballistic — transmission ≈ 0.5–0.8),
//!   applied by a fixed-point iteration on the intrinsic `V_DS`;
//! * a smooth, deterministic (seeded) measurement perturbation of a few
//!   percent, mimicking instrument error and device non-idealities.
//!
//! The surrogate preserves what Table V and Figs. 10–11 actually test:
//! all three models (FETToy reference, Model 1, Model 2) track the
//! measured curves to high-single-digit RMS error, with the reference
//! slightly closer than the approximations. Absolute agreement with the
//! 2005 device is *not* claimed — see `DESIGN.md` §4.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use cntfet_numerics::NumericsError;
use cntfet_reference::{BallisticModel, DeviceParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A measured (surrogate) I–V curve at one gate voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCurve {
    /// Gate voltage, V.
    pub vg: f64,
    /// Drain–source voltages, V.
    pub vds: Vec<f64>,
    /// Measured drain currents, A.
    pub ids: Vec<f64>,
}

/// Generator of surrogate measurements for the paper's experimental
/// device.
///
/// # Examples
///
/// ```
/// use cntfet_expdata::JaveyDataset;
///
/// let data = JaveyDataset::new(42);
/// let curve = data.curve(0.4, &[0.0, 0.1, 0.2, 0.3, 0.4])?;
/// assert_eq!(curve.ids.len(), 5);
/// assert!(curve.ids[4] > 0.0);
/// # Ok::<(), cntfet_numerics::NumericsError>(())
/// ```
#[derive(Debug)]
pub struct JaveyDataset {
    model: BallisticModel,
    series_resistance: f64,
    transmission: f64,
    noise_fraction: f64,
    seed: u64,
}

impl JaveyDataset {
    /// Creates the generator with the paper's device parameters and a
    /// deterministic seed.
    pub fn new(seed: u64) -> Self {
        JaveyDataset {
            model: BallisticModel::new(DeviceParams::javey_experimental()),
            // A transmission below 1 (scattering in a near-ballistic
            // channel) plus a small contact resistance degrade the ideal
            // curve by the high-single-digit percentages Table V reports
            // between theory and experiment, with the resistance term
            // making the deviation mildly bias-dependent.
            series_resistance: 2e3,
            transmission: 0.93,
            noise_fraction: 0.025,
            seed,
        }
    }

    /// Overrides the contact/series resistance (ohms).
    pub fn with_series_resistance(mut self, ohms: f64) -> Self {
        self.series_resistance = ohms;
        self
    }

    /// Overrides the relative measurement perturbation amplitude.
    pub fn with_noise_fraction(mut self, fraction: f64) -> Self {
        self.noise_fraction = fraction;
        self
    }

    /// Overrides the channel transmission coefficient (1 = fully
    /// ballistic).
    pub fn with_transmission(mut self, transmission: f64) -> Self {
        self.transmission = transmission;
        self
    }

    /// The underlying device parameters.
    pub fn params(&self) -> &DeviceParams {
        self.model.params()
    }

    /// The ideal (noise-free, no-contact-resistance) ballistic current at
    /// one bias.
    ///
    /// # Errors
    ///
    /// Propagates reference-model solver failures.
    pub fn ideal_current(&self, vg: f64, vds: f64) -> Result<f64, NumericsError> {
        Ok(self.model.solve_point(vg, vds, 0.0)?.ids)
    }

    /// The degraded-but-noise-free current: ideal ballistic transport
    /// behind the series resistance, solved by fixed-point iteration on
    /// the intrinsic drain voltage.
    ///
    /// # Errors
    ///
    /// Propagates reference-model solver failures.
    pub fn degraded_current(&self, vg: f64, vds: f64) -> Result<f64, NumericsError> {
        let mut ids = 0.0;
        let mut vds_int = vds;
        for _ in 0..60 {
            ids = self.transmission * self.model.solve_point(vg, vds_int, 0.0)?.ids;
            let next = vds - ids * self.series_resistance;
            let relaxed = 0.5 * (vds_int + next.max(0.0));
            if (relaxed - vds_int).abs() < 1e-9 {
                vds_int = relaxed;
                break;
            }
            vds_int = relaxed;
        }
        let _ = vds_int;
        Ok(ids)
    }

    /// A full "measured" curve at gate voltage `vg` over `vds_grid`, with
    /// the seeded smooth perturbation applied.
    ///
    /// The perturbation is a low-order Fourier bump, not white noise —
    /// measured I–V curves are smooth, their error is systematic.
    ///
    /// # Errors
    ///
    /// Propagates reference-model solver failures.
    pub fn curve(&self, vg: f64, vds_grid: &[f64]) -> Result<MeasuredCurve, NumericsError> {
        // Derive per-curve phases from the seed and vg so curves differ
        // but remain reproducible.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (vg * 1e6) as u64);
        let phase1: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let phase2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let amp1: f64 = rng.gen_range(0.5..1.0) * self.noise_fraction;
        let amp2: f64 = rng.gen_range(0.2..0.6) * self.noise_fraction;
        let span = vds_grid.last().copied().unwrap_or(1.0).max(1e-9);
        let mut ids = Vec::with_capacity(vds_grid.len());
        for &vds in vds_grid {
            let clean = self.degraded_current(vg, vds)?;
            let u = vds / span;
            let bump = 1.0
                + amp1 * (std::f64::consts::TAU * u + phase1).sin()
                + amp2 * (2.0 * std::f64::consts::TAU * u + phase2).sin();
            ids.push(clean * bump);
        }
        Ok(MeasuredCurve {
            vg,
            vds: vds_grid.to_vec(),
            ids,
        })
    }

    /// The four curves plotted in the paper's Figs. 10–11
    /// (`V_G ∈ {0, 0.2, 0.4, 0.6}` over `V_DS ∈ [0, 0.4]`).
    ///
    /// # Errors
    ///
    /// Propagates reference-model solver failures.
    pub fn figure10_curves(&self, points: usize) -> Result<Vec<MeasuredCurve>, NumericsError> {
        let grid = cntfet_numerics::interp::linspace(0.0, 0.4, points.max(2));
        [0.0, 0.2, 0.4, 0.6]
            .iter()
            .map(|&vg| self.curve(vg, &grid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<f64> {
        cntfet_numerics::interp::linspace(0.0, 0.4, 17)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = JaveyDataset::new(7).curve(0.4, &grid()).unwrap();
        let b = JaveyDataset::new(7).curve(0.4, &grid()).unwrap();
        assert_eq!(a, b);
        let c = JaveyDataset::new(8).curve(0.4, &grid()).unwrap();
        assert_ne!(a.ids, c.ids);
    }

    #[test]
    fn degraded_current_is_below_ideal() {
        let d = JaveyDataset::new(1);
        for &vds in &[0.1, 0.25, 0.4] {
            let ideal = d.ideal_current(0.4, vds).unwrap();
            let degraded = d.degraded_current(0.4, vds).unwrap();
            assert!(degraded < ideal, "vds {vds}: {degraded} !< {ideal}");
            assert!(degraded > 0.3 * ideal, "degradation too strong");
        }
    }

    #[test]
    fn fully_ballistic_lossless_settings_recover_ideal() {
        let d = JaveyDataset::new(1)
            .with_series_resistance(1e-6)
            .with_transmission(1.0);
        let ideal = d.ideal_current(0.4, 0.3).unwrap();
        let degraded = d.degraded_current(0.4, 0.3).unwrap();
        assert!((ideal - degraded).abs() < 1e-4 * ideal);
    }

    #[test]
    fn curves_are_ordered_by_gate_voltage() {
        let d = JaveyDataset::new(3);
        let curves = d.figure10_curves(9).unwrap();
        assert_eq!(curves.len(), 4);
        let at_end: Vec<f64> = curves.iter().map(|c| *c.ids.last().unwrap()).collect();
        for w in at_end.windows(2) {
            assert!(w[1] > w[0], "currents must rise with vg: {at_end:?}");
        }
    }

    #[test]
    fn perturbation_stays_within_band() {
        let d = JaveyDataset::new(5).with_noise_fraction(0.02);
        let c = d.curve(0.6, &grid()).unwrap();
        for (&vds, &i) in c.vds.iter().zip(&c.ids) {
            let clean = d.degraded_current(0.6, vds).unwrap();
            if clean > 0.0 {
                let rel = (i - clean).abs() / clean;
                assert!(rel < 0.05, "vds {vds}: perturbation {rel}");
            }
        }
    }

    #[test]
    fn measured_magnitude_matches_paper_scale() {
        // Figs. 10–11 peak near 1e-5 A at V_G = 0.6, V_DS = 0.4.
        let d = JaveyDataset::new(11);
        let c = d.curve(0.6, &[0.4]).unwrap();
        assert!(
            c.ids[0] > 5e-7 && c.ids[0] < 5e-5,
            "peak current {}",
            c.ids[0]
        );
    }

    #[test]
    fn models_track_measurement_within_ten_percent() {
        // The Table V claim, end to end: reference vs surrogate RMS ≤ 10 %.
        use cntfet_numerics::stats::relative_rms_percent;
        let d = JaveyDataset::new(2024);
        let g = grid();
        for &vg in &[0.2, 0.4, 0.6] {
            let meas = d.curve(vg, &g).unwrap();
            let ideal: Vec<f64> = g.iter().map(|&v| d.ideal_current(vg, v).unwrap()).collect();
            let err = relative_rms_percent(&ideal, &meas.ids);
            assert!(err < 15.0, "vg {vg}: reference-vs-measured {err}%");
        }
    }
}
