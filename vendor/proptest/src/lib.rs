//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so the
//! proptest surface the workspace's tests use is vendored here: the
//! [`proptest!`] macro, range and [`prop_oneof!`] strategies,
//! [`collection::vec`], `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`test_runner::ProptestConfig`]. Cases are drawn
//! from a deterministic per-test xoshiro stream (perturbable via
//! `PROPTEST_RNG_SEED`); failing inputs are printed in full. The one real
//! capability dropped relative to upstream is shrinking — a failure
//! reports the raw failing case instead of a minimised one.

#![deny(missing_docs)]

/// Everything a test file needs in scope, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Test-case plumbing, mirroring `proptest::test_runner`.
pub mod test_runner {
    /// How a single generated case ended, when it did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case violated an assertion; the test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }

        /// Builds the rejection variant.
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config with an explicit case count (`PROPTEST_CASES` overrides).
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(256)
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
    }

    /// Deterministic xoshiro256** stream, seeded per test function.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds the stream for a named test (`PROPTEST_RNG_SEED` perturbs it).
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(v) = std::env::var("PROPTEST_RNG_SEED") {
                if let Ok(extra) = v.trim().parse::<u64>() {
                    seed ^= extra.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
            }
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "next_index: empty bound");
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of one type.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just
    /// a sampler.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn new_value(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty usize range strategy");
            self.start + rng.next_index(self.end - self.start)
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty u64 range strategy");
            self.start + rng.next_index((self.end - self.start) as usize) as u64
        }
    }

    impl Strategy for Range<u32> {
        type Value = u32;
        fn new_value(&self, rng: &mut TestRng) -> u32 {
            assert!(self.start < self.end, "empty u32 range strategy");
            self.start + rng.next_index((self.end - self.start) as usize) as u32
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn new_value(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty i32 range strategy");
            self.start + rng.next_index((self.end as i64 - self.start as i64) as usize) as i32
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Boxes a strategy; used by [`crate::prop_oneof!`] to unify arm types.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Uniform choice between several strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.next_index(self.arms.len());
            self.arms[i].new_value(rng)
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` (half-open)
    /// and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.start + rng.next_index(self.size.end - self.size.start);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // Callers conventionally parenthesise arms; don't lint that.
        #[allow(unused_parens)]
        let arms = vec![$($crate::strategy::boxed($strat)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                left,
                right,
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_owned(),
            ));
        }
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
///
/// Supports the subset the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then test functions whose arguments are
/// `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let max_rejects = config.cases.saturating_mul(16).max(1024);
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                let mut inputs = String::new();
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                        inputs.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            $arg
                        ));
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest `{}`: too many prop_assume! rejections ({rejects})",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {case}: {msg}\n    inputs: {}",
                            stringify!($name),
                            inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}
