//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand` APIs the workspace actually uses are vendored here:
//! [`rngs::StdRng`], the [`Rng`] / [`SeedableRng`] traits, and
//! floating-point / integer [`Rng::gen_range`]. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, statistically solid for the surrogate-noise use the workspace
//! puts it to (it is *not* cryptographic, exactly like the real
//! `StdRng`'s contract of "unspecified algorithm").

#![deny(missing_docs)]

use std::ops::Range;

/// Seeding trait: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it through
    /// SplitMix64 so that nearby seeds give unrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling trait: everything callers draw from a generator.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open, like the real crate).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty f64 range");
        range.start + (range.end - range.start) * rng.gen_f64()
    }
}

impl SampleRange for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let span = range
            .end
            .checked_sub(range.start)
            .expect("gen_range: empty u64 range");
        assert!(span > 0, "gen_range: empty u64 range");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64.
        range.start + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl SampleRange for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        u64::sample(rng, range.start as u64..range.end as u64) as usize
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the xoshiro state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn u64_range_respected_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = rng.gen_range(0u64..8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
