//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access, so the
//! criterion surface the workspace's benches use is vendored here:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's bootstrap statistics it measures wall-clock time over a
//! calibrated batch and reports min / median / mean per iteration — enough
//! to compare the paper's fast-vs-reference claims, not a replacement for
//! real criterion's rigour.
//!
//! `--bench` and test-harness flags passed by `cargo bench`/`cargo test`
//! are accepted and ignored; `cargo test --benches` runs each bench once
//! in smoke mode (single iteration) so CI stays fast.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark (split across samples).
const TARGET_MEASURE: Duration = Duration::from_millis(600);
/// Warm-up time before measuring.
const TARGET_WARMUP: Duration = Duration::from_millis(150);

/// Identifier for a parameterised benchmark, e.g. `("reference", "7x31")`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { full: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { full: s }
    }
}

/// Passed to the closure given to `bench_function`; runs the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    smoke: bool,
}

impl Bencher<'_> {
    /// Times `routine`, collecting per-iteration wall-clock samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            // `cargo test --benches`: run once to prove it works.
            std::hint::black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm up and calibrate the batch size.
        let start = Instant::now();
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if start.elapsed() >= TARGET_WARMUP {
                // Aim for ~30 samples inside the measurement budget.
                let per_iter = dt.as_secs_f64() / batch as f64;
                let ideal = TARGET_MEASURE.as_secs_f64() / 30.0 / per_iter.max(1e-9);
                batch = (ideal as u64).clamp(1, 1 << 24);
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 24);
        }
        // Measure.
        let start = Instant::now();
        while start.elapsed() < TARGET_MEASURE || self.samples.len() < 10 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
            if self.samples.len() >= 500 {
                break;
            }
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn run_one(name: &str, smoke: bool, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut samples = Vec::new();
    let mut b = Bencher {
        samples: &mut samples,
        smoke,
    };
    f(&mut b);
    if smoke {
        println!("bench {name:<40} ... ok (smoke)");
        return;
    }
    samples.sort();
    if samples.is_empty() {
        println!("bench {name:<40} ... no samples");
        return;
    }
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {name:<40} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        human(min),
        human(median),
        human(mean),
        samples.len()
    );
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test --benches` the libtest-style `--test` flag (or
        // lack of `--bench`) signals smoke mode; `cargo bench` passes
        // `--bench`.
        let args: Vec<String> = std::env::args().collect();
        let bench_mode = args.iter().any(|a| a == "--bench");
        Self { smoke: !bench_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(name, self.smoke, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        run_one(&full, self.parent.smoke, &mut f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
