//! Offline, API-compatible subset of `rayon`, built on `std::thread::scope`.
//!
//! The build environment for this workspace has no network access, so the
//! slice-parallelism subset the workspace uses is vendored here with the
//! same call-site syntax as real rayon:
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<i64> = [1i64, 2, 3, 4].par_iter().map(|&x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! Work is split into one contiguous chunk per worker thread (bounded by
//! [`current_num_threads`]) and executed under `std::thread::scope`, so
//! borrowed data flows into workers without `'static` bounds and results
//! come back in input order. `RAYON_NUM_THREADS` caps the worker count
//! exactly as it does for real rayon; inputs shorter than the worker
//! count fall back to a plain sequential loop (spawn overhead would
//! dominate).

#![deny(missing_docs)]

use std::num::NonZeroUsize;

/// The traits a caller needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads parallel operations will use: the
/// `RAYON_NUM_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs the two closures, potentially in parallel, and returns both
/// results — the shim for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Parallel iterator machinery (eager, slice-backed).
pub mod iter {
    use crate::current_num_threads;

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The element type produced.
        type Item;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion into a borrowing parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// The element type produced (a reference).
        type Item: 'a;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Returns a parallel iterator over borrowed elements.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn par_iter(&'a self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn into_par_iter(self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
        type Item = &'a T;
        type Iter = SliceParIter<'a, T>;
        fn into_par_iter(self) -> SliceParIter<'a, T> {
            SliceParIter { slice: self }
        }
    }

    /// An eager parallel iterator: the minimal `ParallelIterator` facade.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Drains the iterator into an ordered `Vec`.
        fn drive(self) -> Vec<Self::Item>;

        /// Maps every element through `f`, in parallel.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Collects into any container buildable from an ordered `Vec`.
        fn collect<C: From<Vec<Self::Item>>>(self) -> C {
            C::from(self.drive())
        }
    }

    /// Parallel iterator over a shared slice.
    pub struct SliceParIter<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync + 'a> ParallelIterator for SliceParIter<'a, T> {
        type Item = &'a T;
        fn drive(self) -> Vec<&'a T> {
            self.slice.iter().collect()
        }
    }

    /// The result of [`ParallelIterator::map`].
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<'a, T, R, F> ParallelIterator for Map<SliceParIter<'a, T>, F>
    where
        T: Sync + 'a,
        R: Send,
        F: Fn(&'a T) -> R + Sync + Send,
    {
        type Item = R;
        fn drive(self) -> Vec<R> {
            parallel_map_slice(self.base.slice, &self.f)
        }
    }

    /// Chunk-per-thread ordered parallel map over a slice.
    fn parallel_map_slice<'a, T, R, F>(data: &'a [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        let workers = current_num_threads().min(data.len());
        if workers <= 1 {
            return data.iter().map(f).collect();
        }
        let chunk = data.len().div_ceil(workers);
        let mut out = Vec::with_capacity(data.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("rayon worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let data: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = data.iter().map(|&x| x * x + 1).collect();
        let par: Vec<u64> = data.par_iter().map(|&x| x * x + 1).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_iter_handles_tiny_inputs() {
        let one = [5u32];
        let got: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(got, vec![6]);
        let empty: [u32; 0] = [];
        let got: Vec<u32> = empty.par_iter().map(|&x| x + 1).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
