//! The `.option` card: parsing, canonical round-trip, lowering into
//! [`NewtonOptions`] / [`TransientOptions`], and end-to-end behaviour
//! (the knobs must actually reach the engine).

use cntfet::circuit::deck::{Deck, OptionEntry};
use cntfet::circuit::engine::{NewtonOptions, SolverKind};
use cntfet::circuit::transient::TransientOptions;

fn deck(body: &str) -> Deck {
    Deck::parse(body).unwrap_or_else(|e| panic!("{e}"))
}

const RC_TAIL: &str = "\
V1 in 0 PULSE(0 1 0 1n 1n 10u 20u)
R1 in out 1k
C1 out 0 1n
.tran 1u
.print v(out)
.end
";

#[test]
fn option_card_parses_every_knob() {
    let d = deck(&format!(
        "knobs\n.option reltol=1e-2 abstol=2u dtmin=1p\n.option bypass=1 bypassvtol=5e-5 solver=sparse\n.option limiting=0 armijo_c1=1e-3 ptc=off\n{RC_TAIL}"
    ));
    let entries: Vec<&OptionEntry> = d.options.iter().flat_map(|c| &c.entries).collect();
    assert_eq!(entries.len(), 9);

    let newton = d.newton_options();
    assert!(newton.bypass);
    assert_eq!(newton.bypass_vtol, 5e-5);
    assert_eq!(newton.solver, SolverKind::Sparse);
    assert!(!newton.limiting);
    assert_eq!(newton.armijo_c1, 1e-3);
    assert!(!newton.ptc);

    let tran = d.transient_options();
    assert_eq!(tran.rel_tol, 1e-2);
    assert_eq!(tran.abs_tol, 2e-6, "SPICE suffix 'u' must scale abstol");
    assert_eq!(tran.dt_min, Some(1e-12));
    assert!(tran.newton.bypass, "newton knobs flow into the transient");
}

#[test]
fn option_free_deck_lowering_is_exactly_the_default() {
    let d = deck(&format!("plain\n{RC_TAIL}"));
    assert_eq!(d.newton_options(), NewtonOptions::default());
    let tran = d.transient_options();
    let default = TransientOptions::default();
    assert_eq!(tran.rel_tol, default.rel_tol);
    assert_eq!(tran.abs_tol, default.abs_tol);
    assert_eq!(tran.dt_min, default.dt_min);
}

#[test]
fn later_entries_win() {
    let d = deck(&format!(
        "merge order\n.option reltol=1e-2\n.option reltol=4e-3 bypass=on\n.option bypass=off\n{RC_TAIL}"
    ));
    assert_eq!(d.transient_options().rel_tol, 4e-3);
    assert!(!d.newton_options().bypass, "bypass=off must override on");
}

#[test]
fn display_round_trips_the_canonical_form() {
    let d = deck(&format!(
        "round trip\n.option reltol=1e-2 bypass=1 solver=dense\n{RC_TAIL}"
    ));
    let rendered = d.to_string();
    assert!(
        rendered.contains(".option reltol=1e-2 bypass=1 solver=dense"),
        "canonical text missing from:\n{rendered}"
    );
    let again = deck(&rendered);
    assert_eq!(again.options, d.options);
    assert_eq!(again.newton_options(), d.newton_options());
}

#[test]
fn unknown_keys_and_bad_values_are_rejected_with_location() {
    for (body, needle) in [
        (".option gmin=1e-12", "gmin"),
        (".option reltol=-1", "reltol"),
        (".option bypass=maybe", "bypass"),
        (".option solver=cholesky", "solver"),
        (".option limiting=maybe", "limiting"),
        (".option armijo_c1=1.5", "armijo_c1"),
        (".option armijo_c1=0", "armijo_c1"),
        (".option ptc=2", "ptc"),
        (".option", ".option"),
    ] {
        let text = format!("bad\n{body}\n{RC_TAIL}");
        let err = Deck::parse(&text).expect_err(body).to_string();
        assert!(err.contains(needle), "{body}: diagnostic was:\n{err}");
        assert!(err.contains(":2:"), "{body}: no line-2 location in:\n{err}");
    }
}

/// The knobs must actually steer the run: a loosened `reltol` lets the
/// adaptive stepper take larger steps, so the same `.tran` card
/// produces fewer accepted points than the default tolerance does.
#[test]
fn reltol_reaches_the_adaptive_stepper() {
    let tight = deck(
        "tight\nV1 in 0 PULSE(0 1 0 1n 1n 10u 20u)\nR1 in out 1k\nC1 out 0 1n\n.tran 2u\n.print v(out)\n.end\n",
    );
    let loose = deck(
        "loose\n.option reltol=5e-2 abstol=1e-3\nV1 in 0 PULSE(0 1 0 1n 1n 10u 20u)\nR1 in out 1k\nC1 out 0 1n\n.tran 2u\n.print v(out)\n.end\n",
    );
    let tight_rows = tight.run().unwrap().reports[0].rows.len();
    let loose_rows = loose.run().unwrap().reports[0].rows.len();
    assert!(
        loose_rows < tight_rows,
        "loose tolerance should accept fewer steps ({loose_rows} vs {tight_rows})"
    );
}

/// Forcing the dense and sparse solvers on the same deck must agree:
/// solver selection is a performance knob, not a semantics knob.
#[test]
fn solver_selection_changes_the_path_not_the_answer() {
    let body = "V1 in 0 DC 2\nR1 in mid 1k\nR2 mid out 1k\nR3 out 0 1k\n.op\n.print op v(mid) v(out)\n.end\n";
    let dense = deck(&format!("dense\n.option solver=dense\n{body}"))
        .run()
        .unwrap();
    let sparse = deck(&format!("sparse\n.option solver=sparse\n{body}"))
        .run()
        .unwrap();
    assert_eq!(dense.reports[0].rows, sparse.reports[0].rows);
}
