//! Tests pinned to the paper's headline claims (the "who wins, by
//! roughly what factor" shape of the evaluation).

use cntfet::core::CompactCntFet;
use cntfet::numerics::interp::linspace;
use cntfet::reference::{BallisticModel, DeviceParams};
use std::time::Instant;

/// The paper's Table I shape: the compact models are orders of magnitude
/// faster than the reference. Our Rust reference is itself far faster
/// than MATLAB FETToy, so the enforced floor is conservative (≥ 50×);
/// release builds typically measure several hundred.
#[test]
fn compact_models_are_orders_of_magnitude_faster() {
    // Unoptimised builds (and loaded CI runners) shift both absolute
    // timings and the ratio unpredictably; the Table-I claim is about the
    // optimised evaluation path, so only a much looser sanity floor is
    // enforced there.
    let floor = if cfg!(debug_assertions) { 5.0 } else { 50.0 };
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m2 = CompactCntFet::model2(params).expect("fit");

    // Warm both paths first.
    let _ = reference.solve_point(0.5, 0.4, 0.0).expect("reference");
    let _ = m2.ids(0.5, 0.4).expect("compact");

    let n_fast = 3000;
    let t0 = Instant::now();
    for _ in 0..n_fast {
        let _ = m2.ids(0.5, 0.4).expect("compact");
    }
    let per_fast = t0.elapsed().as_secs_f64() / n_fast as f64;

    let n_slow = 20;
    let t1 = Instant::now();
    for _ in 0..n_slow {
        let _ = reference.solve_point(0.5, 0.4, 0.0).expect("reference");
    }
    let per_slow = t1.elapsed().as_secs_f64() / n_slow as f64;

    let speedup = per_slow / per_fast;
    assert!(
        speedup > floor,
        "speed-up only {speedup:.0}x against a floor of {floor}x"
    );
}

/// Model 2 must be at least as accurate as Model 1 when averaged over the
/// paper's Table II conditions at room temperature.
#[test]
fn model2_is_more_accurate_than_model1_at_room_temperature() {
    use cntfet::numerics::stats::relative_rms_percent;
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("fit m1");
    let m2 = CompactCntFet::model2(params).expect("fit m2");
    let grid = linspace(0.0, 0.6, 25);
    let mut sum1 = 0.0;
    let mut sum2 = 0.0;
    for vg in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
        let slow = reference
            .output_characteristic(vg, &grid)
            .expect("ref")
            .currents();
        sum1 += relative_rms_percent(
            &m1.output_characteristic(vg, &grid).expect("m1").currents(),
            &slow,
        );
        sum2 += relative_rms_percent(
            &m2.output_characteristic(vg, &grid).expect("m2").currents(),
            &slow,
        );
    }
    assert!(sum2 < sum1, "model2 total {sum2}% vs model1 total {sum1}%");
    // And Model 2's average stays in the paper's low-single-digit band.
    assert!(sum2 / 6.0 < 3.0, "model2 average {}%", sum2 / 6.0);
}

/// Fig. 6 shape: the saturation current at VG = 0.6 V is ~9 µA and the
/// family is ordered by gate voltage with visible saturation.
#[test]
fn figure6_magnitudes_and_shape() {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params);
    let grid = linspace(0.0, 0.6, 13);
    let mut last_peak = 0.0;
    for vg in [0.3, 0.4, 0.5, 0.6] {
        let c = reference.output_characteristic(vg, &grid).expect("ref");
        let peak = *c.currents().last().expect("non-empty");
        assert!(peak > last_peak, "family must be ordered by VG");
        last_peak = peak;
    }
    assert!(
        last_peak > 4e-6 && last_peak < 2e-5,
        "I(0.6, 0.6) = {last_peak} A vs paper ~9e-6"
    );
}

/// Fig. 8 shape: at T = 150 K, EF = 0 eV the currents are several times
/// larger (paper peak ~3.5e-5 A).
#[test]
fn figure8_low_temperature_band_edge_scale() {
    use cntfet::physics::units::{ElectronVolts, Kelvin};
    let params = DeviceParams::paper_default()
        .with_temperature(Kelvin(150.0))
        .with_fermi_level(ElectronVolts(0.0));
    let reference = BallisticModel::new(params);
    let peak = reference.solve_point(0.6, 0.6, 0.0).expect("reference").ids;
    assert!(
        peak > 1e-5 && peak < 1e-4,
        "I(0.6,0.6) at 150K/EF=0 is {peak} vs paper ~3.5e-5"
    );
}

/// The closed-form solver and the reference Newton solver agree on the
/// self-consistent voltage itself, not just the current.
#[test]
fn self_consistent_voltage_agreement() {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m2 = CompactCntFet::model2(params).expect("fit");
    for vg in [0.3, 0.45, 0.6] {
        for vds in [0.1, 0.4] {
            let slow = reference.solve_point(vg, vds, 0.0).expect("ref").vsc;
            let fast = m2.vsc(vg, vds).expect("compact");
            assert!(
                (slow - fast).abs() < 0.012,
                "vg {vg} vds {vds}: {fast} vs {slow}"
            );
        }
    }
}

/// Both models remain exactly zero-current at zero drain bias for any
/// gate voltage (eq. 14 with U_SF = U_DF).
#[test]
fn zero_vds_zero_current_invariant() {
    let params = DeviceParams::paper_default();
    let m1 = CompactCntFet::model1(params.clone()).expect("fit m1");
    let m2 = CompactCntFet::model2(params).expect("fit m2");
    for vg in [0.0, 0.2, 0.4, 0.6, 0.8] {
        assert!(m1.ids(vg, 0.0).expect("m1").abs() < 1e-15);
        assert!(m2.ids(vg, 0.0).expect("m2").abs() < 1e-15);
    }
}
