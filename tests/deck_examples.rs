//! The checked-in example decks under `examples/decks/` parse, run and
//! — for the CNFET inverter — reproduce the programmatic `Simulator`
//! results **bitwise**: the deck front-end must be a pure text skin
//! over the session API, adding no numerical behaviour of its own.

use cntfet::circuit::deck::Deck;
use cntfet::circuit::prelude::*;
use cntfet::core::CompactCntFet;
use cntfet::physics::units::{ElectronVolts, Kelvin};
use cntfet::reference::DeviceParams;
use std::sync::Arc;

fn read_deck(name: &str) -> Deck {
    let path = format!("{}/examples/decks/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Deck::parse(&text).unwrap_or_else(|e| panic!("{path}:\n{e}"))
}

#[test]
fn divider_deck_hits_half_rail() {
    let deck = read_deck("divider.cir");
    let run = deck.run().unwrap();
    assert_eq!(run.reports.len(), 2, ".op and .dc");
    // .op: 2 V across equal resistors.
    assert_eq!(run.reports[0].columns, ["v(out)"]);
    assert!((run.reports[0].rows[0][0] - 1.0).abs() < 1e-9);
    // .dc: half the swept value at every point.
    let dc = &run.reports[1];
    assert_eq!(dc.columns, ["V1", "v(out)"]);
    assert_eq!(dc.rows.len(), 5);
    for row in &dc.rows {
        assert!((row[1] - row[0] / 2.0).abs() < 1e-9, "{row:?}");
    }
}

#[test]
fn rc_lowpass_deck_charges_and_rolls_off() {
    let deck = read_deck("rc_lowpass.cir");
    let run = deck.run().unwrap();
    assert_eq!(run.reports.len(), 3, ".op, .tran and .ac");
    // .tran: pulse drive charges out through tau = 1 us; 5 us ≈ 5 tau.
    let tran = &run.reports[1];
    let last = tran.rows.last().unwrap();
    assert!((last[0] - 5e-6).abs() < 1e-18, "lands exactly on t_stop");
    assert!((last[1] - 1.0).abs() < 2e-2, "settled: {last:?}");
    // .ac: unity in the passband, rolled off with -90 degrees at the top.
    let ac = &run.reports[2];
    assert_eq!(ac.columns, ["freq", "vm(out)", "vp(out)"]);
    let first = &ac.rows[0];
    let top = ac.rows.last().unwrap();
    assert!((first[1] - 1.0).abs() < 1e-4, "passband: {first:?}");
    assert!(top[1] < 2e-3, "stopband: {top:?}");
    assert!((top[2] + 90.0).abs() < 1.0, "phase -> -90 deg: {top:?}");
}

#[test]
fn ring_oscillator_deck_oscillates() {
    let deck = read_deck("ring_oscillator.cir");
    let run = deck.run().unwrap();
    let tran = &run.reports[0];
    assert_eq!(tran.columns, ["time", "v(s0)", "v(s1)", "v(s2)"]);
    // Rail-to-rail swing on stage 0 after the .ic kick.
    let s0: Vec<f64> = tran.rows.iter().map(|r| r[1]).collect();
    let lo = s0.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = s0.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(lo < 0.1 && hi > 0.7, "no oscillation: swing [{lo}, {hi}]");
    // Several mid-rail crossings inside 0.2 ns (period ~ 32 ps).
    let crossings = s0
        .windows(2)
        .filter(|w| (w[0] - 0.4) * (w[1] - 0.4) < 0.0)
        .count();
    assert!(crossings >= 8, "only {crossings} mid-rail crossings");
}

/// The acceptance test: the inverter deck's `.dc` + `.tran` + `.ac`
/// probe outputs are bitwise identical to the same analyses built and
/// run directly against the `Simulator` session API.
#[test]
fn inverter_deck_matches_programmatic_simulator_bitwise() {
    let deck = read_deck("inverter.cir");
    let run = deck.run().unwrap();
    assert_eq!(run.reports.len(), 3, ".dc, .tran and .ac");

    // Mirror the deck exactly: same model parameters (the deck's
    // `.model` defaults are the paper device), same node-creation and
    // element order, same numeric arithmetic as the suffix parser
    // (`0.1n` is 0.1 * 1e-9, not the literal 1e-10 — they can differ
    // in the last bit).
    let vdd = 0.8;
    let device = DeviceParams::paper_default()
        .with_fermi_level(ElectronVolts(-0.32))
        .with_temperature(Kelvin(300.0));
    let nfet = Arc::new(CompactCntFet::model2(device.clone()).unwrap());
    let pfet = Arc::new(CompactCntFet::model2(device).unwrap());
    let build = || {
        let mut c = Circuit::new();
        let n_vdd = c.node("vdd");
        let n_in = c.node("in");
        let n_out = c.node("out");
        c.add(VoltageSource::dc("VDD", n_vdd, Circuit::ground(), vdd));
        c.add(VoltageSource::with_waveform(
            "VIN",
            n_in,
            Circuit::ground(),
            Waveform::Pulse {
                low: 0.0,
                high: vdd,
                delay: 0.1 * 1e-9,
                rise: 0.1 * 1e-9,
                fall: 0.1 * 1e-9,
                width: 0.7 * 1e-9,
                period: 2.0 * 1e-9,
            },
        ));
        c.add(CnfetElement::new(
            "MP",
            Arc::clone(&pfet),
            Polarity::P,
            n_out,
            n_in,
            n_vdd,
            100.0 * 1e-9,
        ));
        c.add(CnfetElement::new(
            "MN",
            Arc::clone(&nfet),
            Polarity::N,
            n_out,
            n_in,
            Circuit::ground(),
            100.0 * 1e-9,
        ));
        c.add(Capacitor::new("CL", n_out, Circuit::ground(), 1e-15));
        c
    };

    // .dc VIN 0 {vdd} 0.05 — 17 warm-started points on a fresh session.
    let values: Vec<f64> = (0..17).map(|i| 0.05 * i as f64).collect();
    let mut sim = Simulator::new(build());
    let sweep = sim
        .dc_sweep(&SweepSpec::new("VIN", values.clone()))
        .unwrap();
    let out = sweep.voltage("out").unwrap();
    let dc = &run.reports[0];
    assert_eq!(dc.columns, ["VIN", "v(out)"]);
    assert_eq!(dc.rows.len(), values.len());
    for (k, row) in dc.rows.iter().enumerate() {
        assert_eq!(row[0].to_bits(), values[k].to_bits(), "swept value {k}");
        assert_eq!(row[1].to_bits(), out[k].to_bits(), "v(out) at point {k}");
    }

    // .tran 2n — adaptive stepping from the DC operating point.
    let mut sim = Simulator::new(build());
    let tran_ref = sim.transient(&TransientSpec::adaptive(2.0 * 1e-9)).unwrap();
    let tran = &run.reports[1];
    assert_eq!(tran.columns, ["time", "v(in)", "v(out)"]);
    assert_eq!(tran.rows.len(), tran_ref.time().len());
    let v_in = tran_ref.voltage("in").unwrap();
    let v_out = tran_ref.voltage("out").unwrap();
    for (k, row) in tran.rows.iter().enumerate() {
        assert_eq!(row[0].to_bits(), tran_ref.time()[k].to_bits(), "time {k}");
        assert_eq!(row[1].to_bits(), v_in[k].to_bits(), "v(in) at {k}");
        assert_eq!(row[2].to_bits(), v_out[k].to_bits(), "v(out) at {k}");
    }

    // .ac dec 5 1k 100meg — stimulus on the AC-flagged VIN card.
    let mut sim = Simulator::new(build());
    let ac_ref = sim.ac(&AcSweep::decade("VIN", 1e3, 1e8, 5)).unwrap();
    let ac = &run.reports[2];
    assert_eq!(ac.columns, ["freq", "vm(out)", "vp(out)"]);
    let mag = ac_ref.magnitude("out").unwrap();
    let phase = ac_ref.phase_deg("out").unwrap();
    assert_eq!(ac.rows.len(), ac_ref.frequencies().len());
    for (k, row) in ac.rows.iter().enumerate() {
        assert_eq!(
            row[0].to_bits(),
            ac_ref.frequencies()[k].to_bits(),
            "freq {k}"
        );
        assert_eq!(row[1].to_bits(), mag[k].to_bits(), "|H| at {k}");
        assert_eq!(row[2].to_bits(), phase[k].to_bits(), "phase at {k}");
    }
}

/// Serialise-and-reparse keeps every deck equal (spans are diagnostic
/// metadata) and keeps the divider's analysis results bitwise stable.
#[test]
fn example_decks_round_trip() {
    for name in [
        "divider.cir",
        "rc_lowpass.cir",
        "inverter.cir",
        "ring_oscillator.cir",
    ] {
        let deck = read_deck(name);
        let text = deck.to_text();
        let reparsed = Deck::parse(&text).unwrap_or_else(|e| panic!("{name} round-trip:\n{e}"));
        assert_eq!(deck, reparsed, "{name} round-trips");
    }
    let deck = read_deck("divider.cir");
    let again = Deck::parse(&deck.to_text()).unwrap();
    assert_eq!(deck.run().unwrap(), again.run().unwrap());
}
