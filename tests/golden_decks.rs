//! Guard: the default configuration (partial refactorization on,
//! device bypass off) reproduces the pre-fast-SPICE results **bitwise**
//! on every checked-in example deck.
//!
//! The golden CSVs under `tests/golden/` were captured from the seed
//! binary before the partial-refactorization/bypass work landed. The
//! partial path must replay the exact arithmetic of the full path on
//! the columns it recomputes and reuse the rest verbatim, so `Deck::run`
//! probe output — rendered through the round-tripping `to_csv` — must
//! not move by even one ULP. A diff here means the "partial
//! refactorization is exact, not approximate" invariant broke.

use cntfet::circuit::deck::Deck;

fn repo_path(rel: &str) -> String {
    format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn run_deck_csv(deck_name: &str) -> Vec<String> {
    let path = repo_path(&format!("examples/decks/{deck_name}.cir"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let deck = Deck::parse(&text).unwrap_or_else(|e| panic!("{path}:\n{e}"));
    let run = deck.run().unwrap_or_else(|e| panic!("{path}:\n{e}"));
    run.reports.iter().map(|r| r.to_csv()).collect()
}

fn golden_csv(deck_name: &str) -> String {
    let path = repo_path(&format!("tests/golden/{deck_name}.csv"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The golden files concatenate every card's CSV (header line included
/// per card), exactly as `cntfet-sim --csv` separates them; stitch the
/// fresh reports the same way and compare the raw text — the CSV
/// number formatting round-trips f64 exactly, so textual equality is
/// bitwise equality of every probe sample.
fn assert_bitwise_golden(deck_name: &str) {
    let golden = golden_csv(deck_name);
    let fresh = run_deck_csv(deck_name);
    // Reconstruct the golden capture format: cards are concatenated in
    // source order. (Captured via `cntfet-sim --csv`, whose per-card
    // headers survive in the file.)
    let mut rebuilt = String::new();
    for csv in &fresh {
        rebuilt.push_str(csv);
    }
    // The capture tool also wrote the `* title` / `* card` banner
    // lines; strip comment lines from the golden before comparing.
    let golden_data: Vec<&str> = golden
        .lines()
        .filter(|l| !l.starts_with('*') && !l.is_empty())
        .collect();
    let fresh_data: Vec<&str> = rebuilt
        .lines()
        .filter(|l| !l.starts_with('*') && !l.is_empty())
        .collect();
    assert_eq!(
        golden_data.len(),
        fresh_data.len(),
        "{deck_name}: row count changed ({} golden vs {} fresh)",
        golden_data.len(),
        fresh_data.len()
    );
    for (k, (g, f)) in golden_data.iter().zip(&fresh_data).enumerate() {
        assert_eq!(
            g, f,
            "{deck_name}: line {k} differs — default config must stay \
             bitwise-identical to the seed"
        );
    }
}

#[test]
fn divider_matches_seed_bitwise() {
    assert_bitwise_golden("divider");
}

#[test]
fn inverter_matches_seed_bitwise() {
    assert_bitwise_golden("inverter");
}

#[test]
fn rc_lowpass_matches_seed_bitwise() {
    assert_bitwise_golden("rc_lowpass");
}

#[test]
fn ring_oscillator_matches_seed_bitwise() {
    assert_bitwise_golden("ring_oscillator");
}

/// Hierarchical guard: a `.subckt`-based deck (two full adders built
/// from nand2 cells, flattened by the parser) stays bitwise stable too
/// — the flattener must keep producing the exact same circuit, node
/// order included, or the transient arithmetic shifts.
#[test]
fn adder2_matches_golden_bitwise() {
    assert_bitwise_golden("adder2");
}
