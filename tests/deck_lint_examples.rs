//! Lint contracts for the checked-in deck corpus: every deck under
//! `examples/decks/` is clean even with `--deny-warnings`, and every
//! deck under `examples/decks/bad/` declares its expected findings in
//! a `* lint: CODE …` header line that must match the analyzer's
//! output exactly — the broken decks are executable documentation of
//! the diagnostics.

use cntfet::circuit::deck::{Deck, LintCode, LintOptions, Severity};
use std::path::{Path, PathBuf};

fn decks_in(dir: &str) -> Vec<(PathBuf, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut decks: Vec<PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("{}: {e}", root.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "cir"))
        .collect();
    decks.sort();
    assert!(!decks.is_empty(), "no decks under {}", root.display());
    decks
        .into_iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, text)
        })
        .collect()
}

#[test]
fn example_decks_lint_clean_under_deny_warnings() {
    let strict = LintOptions {
        deny_warnings: true,
        ..LintOptions::default()
    };
    for (path, text) in decks_in("examples/decks") {
        let deck = Deck::parse(&text).unwrap_or_else(|e| panic!("{}:\n{e}", path.display()));
        let report = deck.lint(&strict);
        assert!(
            report.is_clean(),
            "{} should lint clean:\n{report}",
            path.display()
        );
    }
}

#[test]
fn bad_decks_produce_exactly_their_declared_codes() {
    for (path, text) in decks_in("examples/decks/bad") {
        let declared: Vec<LintCode> = text
            .lines()
            .find_map(|l| l.strip_prefix("* lint:"))
            .unwrap_or_else(|| panic!("{} lacks a '* lint:' header", path.display()))
            .split_whitespace()
            .map(|code| {
                LintCode::parse(code)
                    .unwrap_or_else(|| panic!("{}: bad code '{code}'", path.display()))
            })
            .collect();
        let deck = Deck::parse(&text).unwrap_or_else(|e| panic!("{}:\n{e}", path.display()));
        let report = deck.lint(&LintOptions::default());
        let mut got = report.codes();
        got.sort();
        let mut want = declared.clone();
        want.sort();
        assert_eq!(got, want, "{}:\n{report}", path.display());
        // E-codes must be errors, W-codes warnings, out of the box.
        let expect_errors = declared
            .iter()
            .any(|c| c.default_severity() == Severity::Error);
        assert_eq!(
            report.has_errors(),
            expect_errors,
            "{}:\n{report}",
            path.display()
        );
    }
}
