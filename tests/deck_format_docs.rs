//! `docs/DECK_FORMAT.md` promises that every fenced `spice` block is a
//! complete, runnable deck and that every `spice-lint CODE…` block is
//! a complete deck producing exactly the lint codes named on its
//! fence. This test holds it to both: each block is extracted, parsed,
//! and either lowered and run (plain `spice` — which must also lint
//! clean) or linted and compared against its declared codes. A
//! documentation edit that breaks an example breaks the build.

use cntfet::circuit::deck::{Deck, LintCode, LintOptions};

/// One fenced code block: starting line, fence info string (the text
/// after the opening backticks, e.g. `spice` or `spice-lint E101`),
/// and body.
struct Block {
    line: usize,
    info: String,
    body: String,
}

/// Extracts every fenced block whose info string starts with `spice`.
fn spice_blocks(markdown: &str) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut current: Option<Block> = None;
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start();
        match &mut current {
            None => {
                if let Some(info) = fence.strip_prefix("```") {
                    if info.trim() == "spice" || info.trim().starts_with("spice-lint") {
                        current = Some(Block {
                            line: i + 1,
                            info: info.trim().to_string(),
                            body: String::new(),
                        });
                    }
                }
            }
            Some(_) if fence.starts_with("```") => {
                blocks.push(current.take().expect("open block"));
            }
            Some(block) => {
                block.body.push_str(line);
                block.body.push('\n');
            }
        }
    }
    assert!(current.is_none(), "unclosed ```spice fence");
    blocks
}

#[test]
fn every_deck_format_snippet_parses_and_runs_or_lints_as_declared() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/DECK_FORMAT.md");
    let markdown = std::fs::read_to_string(path).expect("docs/DECK_FORMAT.md exists");
    let blocks = spice_blocks(&markdown);
    assert!(
        blocks.len() >= 10,
        "expected the card reference to carry at least 10 runnable decks, found {}",
        blocks.len()
    );
    let mut lint_codes_documented = std::collections::BTreeSet::new();
    for block in blocks {
        let Block { line, info, body } = block;
        let deck = Deck::parse(&body)
            .unwrap_or_else(|e| panic!("DECK_FORMAT.md snippet at line {line}:\n{e}"));
        if info == "spice" {
            let report = deck.lint(&LintOptions::default());
            assert!(
                report.is_clean(),
                "DECK_FORMAT.md snippet at line {line} should lint clean:\n{report}"
            );
            deck.run().unwrap_or_else(|e| {
                panic!("DECK_FORMAT.md snippet at line {line} failed to run:\n{e}")
            });
        } else {
            let declared: Vec<LintCode> = info
                .strip_prefix("spice-lint")
                .expect("spice-lint fence")
                .split_whitespace()
                .map(|code| {
                    LintCode::parse(code).unwrap_or_else(|| {
                        panic!("DECK_FORMAT.md line {line}: unknown lint code '{code}'")
                    })
                })
                .collect();
            assert!(
                !declared.is_empty(),
                "DECK_FORMAT.md line {line}: spice-lint fence names no codes"
            );
            lint_codes_documented.extend(declared.iter().copied());
            let report = deck.lint(&LintOptions::default());
            let mut got = report.codes();
            got.sort();
            let mut want = declared;
            want.sort();
            assert_eq!(
                got, want,
                "DECK_FORMAT.md snippet at line {line}:\n{report}"
            );
        }
    }
    // The diagnostics reference must demonstrate every code the
    // analyzer can emit.
    for code in LintCode::ALL {
        assert!(
            lint_codes_documented.contains(&code),
            "DECK_FORMAT.md documents no snippet triggering {code}"
        );
    }
}

#[test]
fn readme_deck_snippets_parse_and_run() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    let markdown = std::fs::read_to_string(path).expect("README.md exists");
    for Block { line, body, .. } in spice_blocks(&markdown) {
        let deck =
            Deck::parse(&body).unwrap_or_else(|e| panic!("README.md snippet at line {line}:\n{e}"));
        deck.run()
            .unwrap_or_else(|e| panic!("README.md snippet at line {line} failed to run:\n{e}"));
    }
}
