//! `docs/DECK_FORMAT.md` promises that every fenced `spice` block is a
//! complete, runnable deck. This test holds it to that: each block is
//! extracted, parsed, lowered and — analysis cards included — run.
//! A documentation edit that breaks an example breaks the build.

use cntfet::circuit::deck::Deck;

/// Extracts every ```spice fenced block from the markdown source.
fn spice_blocks(markdown: &str) -> Vec<(usize, String)> {
    let mut blocks = Vec::new();
    let mut current: Option<(usize, String)> = None;
    for (i, line) in markdown.lines().enumerate() {
        let fence = line.trim_start();
        match &mut current {
            None if fence.starts_with("```spice") => current = Some((i + 1, String::new())),
            None => {}
            Some(_) if fence.starts_with("```") => {
                blocks.push(current.take().expect("open block"));
            }
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
        }
    }
    assert!(current.is_none(), "unclosed ```spice fence");
    blocks
}

#[test]
fn every_deck_format_snippet_parses_and_runs() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/DECK_FORMAT.md");
    let markdown = std::fs::read_to_string(path).expect("docs/DECK_FORMAT.md exists");
    let blocks = spice_blocks(&markdown);
    assert!(
        blocks.len() >= 10,
        "expected the card reference to carry at least 10 runnable decks, found {}",
        blocks.len()
    );
    for (line, body) in blocks {
        let deck = Deck::parse(&body)
            .unwrap_or_else(|e| panic!("DECK_FORMAT.md snippet at line {line}:\n{e}"));
        deck.run().unwrap_or_else(|e| {
            panic!("DECK_FORMAT.md snippet at line {line} failed to run:\n{e}")
        });
    }
}

#[test]
fn readme_deck_snippets_parse_and_run() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    let markdown = std::fs::read_to_string(path).expect("README.md exists");
    for (line, body) in spice_blocks(&markdown) {
        let deck =
            Deck::parse(&body).unwrap_or_else(|e| panic!("README.md snippet at line {line}:\n{e}"));
        deck.run()
            .unwrap_or_else(|e| panic!("README.md snippet at line {line} failed to run:\n{e}"));
    }
}
