//! The convergence-torture corpus: every deck under
//! `examples/decks/torture/` declares itself `expected-convergent` in
//! a header comment and must (a) lint clean under deny-warnings and
//! (b) run to completion. The decks are built to *fail plain Newton*
//! — bare algebraic stack nodes driven with supply-sized strides per
//! timestep — so a regression in the engine's convergence ladder
//! (voltage limiting → Armijo damping → pseudo-transient / gmin
//! stepping) shows up here as a hard non-convergence failure, not as
//! a silent accuracy drift.

use cntfet::circuit::deck::{Deck, LintOptions};
use std::path::{Path, PathBuf};

const MARKER: &str = "* torture: expected-convergent";

fn torture_decks() -> Vec<(PathBuf, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/decks/torture");
    let mut decks: Vec<PathBuf> = std::fs::read_dir(&root)
        .unwrap_or_else(|e| panic!("{}: {e}", root.display()))
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "cir"))
        .collect();
    decks.sort();
    assert!(!decks.is_empty(), "no decks under {}", root.display());
    decks
        .into_iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{}: {e}", p.display()));
            (p, text)
        })
        .collect()
}

#[test]
fn torture_decks_declare_their_contract() {
    for (path, text) in torture_decks() {
        assert!(
            text.lines().any(|l| l.trim() == MARKER),
            "{}: missing the `{MARKER}` header — the corpus is \
             executable documentation and every deck must state its \
             expected outcome",
            path.display()
        );
    }
}

#[test]
fn torture_decks_lint_clean_under_deny_warnings() {
    let strict = LintOptions {
        deny_warnings: true,
        ..LintOptions::default()
    };
    for (path, text) in torture_decks() {
        let deck = Deck::parse(&text).unwrap_or_else(|e| panic!("{}:\n{e}", path.display()));
        let report = deck.lint(&strict);
        assert!(
            report.is_clean(),
            "{} must lint clean:\n{report}",
            path.display()
        );
    }
}

#[test]
fn torture_decks_converge() {
    for (path, text) in torture_decks() {
        let deck = Deck::parse(&text).unwrap_or_else(|e| panic!("{}:\n{e}", path.display()));
        let run = deck
            .run()
            .unwrap_or_else(|e| panic!("{} must converge:\n{e}", path.display()));
        for report in &run.reports {
            assert!(
                !report.rows.is_empty(),
                "{}: card '{}' produced no rows",
                path.display(),
                report.label
            );
        }
    }
}
