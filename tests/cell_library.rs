//! Contracts for the standard-cell example decks under
//! `examples/cells/`: every `.subckt` block they carry is byte-identical
//! to the canonical block `cntfet-gen` embeds in generated decks
//! ([`cntfet::circuit::deck::generate::cell_subckt`]), every deck lints
//! clean under `--deny-warnings`, and every deck runs its transient to
//! completion — the cells are executable documentation of the library.

use cntfet::circuit::deck::generate::cell_subckt;
use cntfet::circuit::deck::{Deck, LintOptions};
use std::path::Path;

/// Which canonical cells each example deck must embed, in order.
const CELL_DECKS: [(&str, &[&str]); 4] = [
    ("inv.cir", &["inv"]),
    ("nand2.cir", &["nand2"]),
    ("nor2.cir", &["nor2"]),
    ("dff.cir", &["inv", "nand2", "dff"]),
];

fn read(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/cells")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The `.subckt <name> … .ends <name>` block of `text`, inclusive,
/// with a trailing newline — the same shape `cell_subckt` returns.
fn extract_block(text: &str, name: &str) -> String {
    let mut block = String::new();
    let mut inside = false;
    for line in text.lines() {
        let mut words = line.split_whitespace();
        let head = words.next().unwrap_or("");
        if head.eq_ignore_ascii_case(".subckt") && words.next() == Some(name) {
            inside = true;
        }
        if inside {
            block.push_str(line);
            block.push('\n');
            if head.eq_ignore_ascii_case(".ends") {
                return block;
            }
        }
    }
    panic!("no `.subckt {name}` block found");
}

#[test]
fn example_cells_match_the_generator_library() {
    for (file, cells) in CELL_DECKS {
        let text = read(file);
        for name in cells {
            let canonical =
                cell_subckt(name).unwrap_or_else(|| panic!("generator has no cell named '{name}'"));
            assert_eq!(
                extract_block(&text, name),
                canonical,
                "examples/cells/{file}: `.subckt {name}` drifted from the \
                 cntfet-gen library block"
            );
        }
    }
}

#[test]
fn example_cells_lint_clean_under_deny_warnings() {
    let strict = LintOptions {
        deny_warnings: true,
        ..LintOptions::default()
    };
    for (file, _) in CELL_DECKS {
        let deck = Deck::parse(&read(file)).unwrap_or_else(|e| panic!("{file}:\n{e}"));
        let report = deck.lint(&strict);
        assert!(report.is_clean(), "{file} should lint clean:\n{report}");
    }
}

#[test]
fn example_cells_run_their_transients() {
    for (file, _) in CELL_DECKS {
        let deck = Deck::parse(&read(file)).unwrap_or_else(|e| panic!("{file}:\n{e}"));
        let run = deck.run().unwrap_or_else(|e| panic!("{file}:\n{e}"));
        assert!(
            run.reports.iter().any(|r| !r.rows.is_empty()),
            "{file}: no analysis output"
        );
    }
}
