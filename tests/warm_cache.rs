//! Cache correctness: the warm paths (shared [`ModelCache`], shared
//! [`EnginePool`]) must change *cost*, never *results*.
//!
//! The contract under test, deck by deck:
//!
//! * a resubmitted deck — or one that differs only in element values —
//!   reuses the pooled engine's frozen sparsity pattern and pivot
//!   order, yet its CSVs stay **bitwise** equal to a cold run's;
//! * a *topology* change (wiring, element kinds, element count) misses
//!   the engine pool;
//! * a `.model` *parameter* change misses the model cache;
//! * concurrent runs sharing one small pool never cross-contaminate.

use cntfet::circuit::deck::{Deck, EnginePool, ModelCache, RunContext};
use std::sync::Arc;

/// Cold-run CSV: every report stitched in card order, no shared state.
fn cold_csv(text: &str) -> String {
    let run = Deck::parse(text).unwrap().run().unwrap();
    run.reports.iter().map(|r| r.to_csv()).collect()
}

fn warm_ctx<'a>(models: &'a ModelCache, engines: &'a EnginePool) -> RunContext<'a> {
    RunContext {
        models: Some(models),
        engines: Some(engines),
    }
}

fn run_warm(text: &str, ctx: &RunContext<'_>) -> (String, cntfet::circuit::deck::DeckRun) {
    let run = Deck::parse(text).unwrap().run_with(ctx).unwrap();
    let csv: String = run.reports.iter().map(|r| r.to_csv()).collect();
    (csv, run)
}

const INVERTER: &str = "\
CNFET inverter
.model nfet cnfet polarity=n
.model pfet cnfet polarity=p
VDD vdd 0 DC 0.8
VIN in 0 PULSE(0 0.8 0.1n 0.1n 0.1n 0.7n 2n)
MP out in vdd pfet L=100n
MN out in 0 nfet L=100n
CL out 0 1f
.dc VIN 0 0.8 0.1
.tran 2n
.print dc v(out)
.print tran v(out)
.end
";

const RC_A: &str = "\
RC low-pass, nominal values
V1 in 0 PULSE(0 1 0 1n 1n 10u 20u)
R1 in out 1k
C1 out 0 1n
.op
.tran 50n 2u
.print v(out)
.end
";

/// Same wiring as [`RC_A`]; only element values differ, so the two
/// decks share a topology hash and hence a pooled engine.
const RC_B: &str = "\
RC low-pass, shifted corner
V1 in 0 PULSE(0 1 0 1n 1n 10u 20u)
R1 in out 2.2k
C1 out 0 470p
.op
.tran 50n 2u
.print v(out)
.end
";

#[test]
fn resubmitted_deck_hits_both_caches_and_stays_bitwise() {
    let cold = cold_csv(INVERTER);
    let models = ModelCache::new();
    let engines = EnginePool::new();
    let ctx = warm_ctx(&models, &engines);

    let (first_csv, first) = run_warm(INVERTER, &ctx);
    assert_eq!(first.caches.engines.hits, 0, "first run must be cold");
    // Polarity is element-level (applied after fitting), so the n and
    // p cards with default ef/temp share one cached fit: one miss,
    // then one hit within the same run.
    assert_eq!(first.caches.models.misses, 1);
    assert_eq!(first.caches.models.hits, 1);
    assert_eq!(first_csv, cold);

    let (second_csv, second) = run_warm(INVERTER, &ctx);
    assert_eq!(second.caches.engines.hits, 1, "engine pool must hit");
    assert_eq!(second.caches.models.hits, 2, "both fits must be reused");
    assert_eq!(second.caches.models.misses, 0);
    assert_eq!(
        second_csv, cold,
        "warm engine replay must be bitwise-identical to the cold run"
    );
}

#[test]
fn value_changed_deck_shares_the_symbolic_plan_bitwise() {
    assert_eq!(
        Deck::parse(RC_A).unwrap().topology_hash(),
        Deck::parse(RC_B).unwrap().topology_hash(),
        "value-only edits must not move the topology hash"
    );
    let cold_b = cold_csv(RC_B);
    let models = ModelCache::new();
    let engines = EnginePool::new();
    let ctx = warm_ctx(&models, &engines);

    run_warm(RC_A, &ctx);
    let (warm_b_csv, warm_b) = run_warm(RC_B, &ctx);
    assert_eq!(
        warm_b.caches.engines.hits, 1,
        "same topology, different values: the pooled engine must be reused"
    );
    assert_eq!(
        warm_b_csv, cold_b,
        "a value-changed deck on a warm engine must match its cold run bitwise"
    );
}

#[test]
fn topology_change_misses_the_engine_pool() {
    let grown = "\
RC low-pass with a load
V1 in 0 PULSE(0 1 0 1n 1n 10u 20u)
R1 in out 1k
C1 out 0 1n
RL out 0 10k
.op
.print v(out)
.end
";
    assert_ne!(
        Deck::parse(RC_A).unwrap().topology_hash(),
        Deck::parse(grown).unwrap().topology_hash()
    );
    let models = ModelCache::new();
    let engines = EnginePool::new();
    let ctx = warm_ctx(&models, &engines);
    run_warm(RC_A, &ctx);
    let (_, run) = run_warm(grown, &ctx);
    assert_eq!(run.caches.engines.hits, 0, "changed wiring must miss");
    assert_eq!(run.caches.engines.misses, 1);
}

#[test]
fn model_param_change_misses_the_model_cache() {
    let shifted = INVERTER.replace(
        ".model nfet cnfet polarity=n",
        ".model nfet cnfet polarity=n ef=-0.30",
    );
    let models = ModelCache::new();
    let engines = EnginePool::new();
    let ctx = warm_ctx(&models, &engines);

    run_warm(INVERTER, &ctx);
    let (_, run) = run_warm(&shifted, &ctx);
    assert_eq!(
        run.caches.models.misses, 1,
        "the ef-shifted nfet must be refitted"
    );
    assert_eq!(
        run.caches.models.hits, 1,
        "the untouched pfet fit must be reused"
    );
    // Polarity is element-level (applied after fitting), so the n and
    // p cards with default ef/temp share one cached fit.
    assert_eq!(models.len(), 2, "default-params fit + ef=-0.30 fit");
}

#[test]
fn concurrent_runs_on_one_pool_never_cross_contaminate() {
    let cases: Vec<(&str, String)> = vec![
        (INVERTER, cold_csv(INVERTER)),
        (RC_A, cold_csv(RC_A)),
        (RC_B, cold_csv(RC_B)),
    ];
    let models = Arc::new(ModelCache::new());
    let engines = Arc::new(EnginePool::new());

    std::thread::scope(|scope| {
        for worker in 0..6 {
            let (text, want) = &cases[worker % cases.len()];
            let models = Arc::clone(&models);
            let engines = Arc::clone(&engines);
            scope.spawn(move || {
                for round in 0..4 {
                    let ctx = RunContext {
                        models: Some(&models),
                        engines: Some(&engines),
                    };
                    let (csv, _) = run_warm(text, &ctx);
                    assert_eq!(
                        &csv, want,
                        "worker {worker} round {round}: a shared pool must \
                         never bleed state between decks"
                    );
                }
            });
        }
    });
}
