//! Cross-crate integration tests: the full pipeline from device physics
//! through the reference model, the compact fit, and the circuit
//! simulator.

use cntfet::circuit::prelude::*;
use cntfet::core::{CompactCntFet, PiecewiseSpec};
use cntfet::numerics::interp::linspace;
use cntfet::numerics::stats::relative_rms_percent;
use cntfet::physics::units::{ElectronVolts, Kelvin};
use cntfet::reference::{BallisticModel, DeviceParams};
use std::sync::Arc;

#[test]
fn compact_model_tracks_reference_across_bias_plane() {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let fast = CompactCntFet::model2(params).expect("fit");
    for vg in [0.25, 0.4, 0.55] {
        for vds in [0.1, 0.3, 0.6] {
            let slow = reference.solve_point(vg, vds, 0.0).expect("reference").ids;
            let quick = fast.ids(vg, vds).expect("compact");
            let scale = slow.abs().max(1e-8);
            assert!(
                (quick - slow).abs() / scale < 0.12,
                "vg {vg} vds {vds}: {quick} vs {slow}"
            );
        }
    }
}

#[test]
fn both_models_beat_five_percent_at_room_temperature_high_gate() {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("fit m1");
    let m2 = CompactCntFet::model2(params).expect("fit m2");
    let grid = linspace(0.0, 0.6, 25);
    for vg in [0.4, 0.5, 0.6] {
        let slow = reference
            .output_characteristic(vg, &grid)
            .expect("ref")
            .currents();
        let f1 = m1.output_characteristic(vg, &grid).expect("m1").currents();
        let f2 = m2.output_characteristic(vg, &grid).expect("m2").currents();
        assert!(relative_rms_percent(&f1, &slow) < 5.0, "m1 at vg {vg}");
        assert!(relative_rms_percent(&f2, &slow) < 5.0, "m2 at vg {vg}");
    }
}

#[test]
fn fit_generalises_across_paper_parameter_ranges() {
    // The paper fits over 150–450 K and EF −0.5..0 eV; every combination
    // must at least construct, solve and stay within a sane error band.
    for t in [150.0, 300.0, 450.0] {
        for ef in [-0.5, -0.32, 0.0] {
            let params = DeviceParams::paper_default()
                .with_temperature(Kelvin(t))
                .with_fermi_level(ElectronVolts(ef));
            let reference = BallisticModel::new(params.clone());
            let m2 = CompactCntFet::model2(params).expect("fit");
            let grid = linspace(0.0, 0.6, 13);
            for vg in [0.2, 0.4, 0.6] {
                let slow = reference
                    .output_characteristic(vg, &grid)
                    .expect("ref")
                    .currents();
                let fast = m2.output_characteristic(vg, &grid).expect("m2").currents();
                let err = relative_rms_percent(&fast, &slow);
                assert!(
                    err < 25.0,
                    "T {t} EF {ef} vg {vg}: {err}% exceeds the sanity band"
                );
            }
        }
    }
}

#[test]
fn circuit_level_device_agrees_with_standalone_model() {
    // A single CNFET biased by ideal sources inside the MNA engine must
    // reproduce the standalone compact model exactly (same equations).
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("fit"));
    let mut ckt = Circuit::new();
    let d = ckt.node("d");
    let g = ckt.node("g");
    ckt.add(VoltageSource::dc("VD", d, Circuit::ground(), 0.45));
    ckt.add(VoltageSource::dc("VG", g, Circuit::ground(), 0.55));
    ckt.add(CnfetElement::new(
        "M1",
        Arc::clone(&model),
        Polarity::N,
        d,
        g,
        Circuit::ground(),
        100e-9,
    ));
    let bases = ckt.extra_var_bases();
    let op = Simulator::new(ckt).op().expect("dc");
    let i_drain = -op.x()[bases[0]]; // VD branch current supplies the drain
    let standalone = model.ids(0.55, 0.45).expect("ids");
    assert!(
        (i_drain - standalone).abs() < 1e-9 + 1e-6 * standalone,
        "circuit {i_drain} vs standalone {standalone}"
    );
}

#[test]
fn cnt_inverter_chain_propagates_logic() {
    // Two cascaded inverters restore the input level.
    let model = Arc::new(CompactCntFet::model2(DeviceParams::paper_default()).expect("fit"));
    let tech = CntTechnology::symmetric(model, 0.8);
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let a = ckt.node("a");
    let b = ckt.node("b");
    let c = ckt.node("c");
    ckt.add(VoltageSource::dc("VDD", vdd, Circuit::ground(), tech.vdd));
    ckt.add(VoltageSource::dc("VIN", a, Circuit::ground(), 0.0));
    add_inverter(&mut ckt, &tech, "i1", a, b, vdd);
    add_inverter(&mut ckt, &tech, "i2", b, c, vdd);
    let op = Simulator::new(ckt).op().expect("dc");
    assert!(op.voltage_at(b) > 0.9 * tech.vdd, "first stage high");
    assert!(op.voltage_at(c) < 0.1 * tech.vdd, "second stage low");
}

/// More segments with *untuned* boundaries are not automatically better
/// (the paper optimised its boundaries numerically); the claim enforced
/// here is that a plausible 5-piece layout stays in the same accuracy
/// class as Model 2 rather than degrading.
#[test]
fn custom_spec_with_more_segments_stays_in_accuracy_class() {
    let params = DeviceParams::paper_default();
    let reference = BallisticModel::new(params.clone());
    let m2 = CompactCntFet::model2(params.clone()).expect("fit m2");
    let spec5 =
        PiecewiseSpec::custom(vec![-0.40, -0.20, -0.05, 0.12], vec![1, 2, 3, 3]).expect("spec");
    let m5 = CompactCntFet::from_spec(params, spec5).expect("fit 5-piece");
    let grid = linspace(0.0, 0.6, 25);
    let mut e2 = 0.0;
    let mut e5 = 0.0;
    for vg in [0.2, 0.3, 0.4, 0.5, 0.6] {
        let slow = reference
            .output_characteristic(vg, &grid)
            .expect("ref")
            .currents();
        e2 += relative_rms_percent(
            &m2.output_characteristic(vg, &grid).expect("m2").currents(),
            &slow,
        );
        e5 += relative_rms_percent(
            &m5.output_characteristic(vg, &grid).expect("m5").currents(),
            &slow,
        );
    }
    assert!(e5 <= e2 * 1.6, "5-piece {e5} vs model2 {e2} (summed %)");
}

#[test]
fn experimental_surrogate_validates_all_three_models() {
    use cntfet::expdata::JaveyDataset;
    let data = JaveyDataset::new(2024);
    let params = DeviceParams::javey_experimental();
    let reference = BallisticModel::new(params.clone());
    let m1 = CompactCntFet::model1(params.clone()).expect("fit m1");
    let m2 = CompactCntFet::model2(params).expect("fit m2");
    let grid = linspace(0.0, 0.4, 17);
    for vg in [0.2, 0.4, 0.6] {
        let measured = data.curve(vg, &grid).expect("surrogate");
        let r: Vec<f64> = grid
            .iter()
            .map(|&v| reference.solve_point(vg, v, 0.0).expect("ref").ids)
            .collect();
        let i1 = m1.output_characteristic(vg, &grid).expect("m1").currents();
        let i2 = m2.output_characteristic(vg, &grid).expect("m2").currents();
        // Table V's claim: every model stays within ~10 % of experiment.
        assert!(
            relative_rms_percent(&r, &measured.ids) < 15.0,
            "ref at {vg}"
        );
        assert!(
            relative_rms_percent(&i1, &measured.ids) < 18.0,
            "m1 at {vg}"
        );
        assert!(
            relative_rms_percent(&i2, &measured.ids) < 18.0,
            "m2 at {vg}"
        );
    }
}
